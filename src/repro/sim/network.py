"""Simulated network: links, latency models, partitions.

Substitutes the paper's testbed transports (RabbitMQ between DCs, WebRTC
between peers, `tc` latency shaping): what the protocols observe is only
latency, loss, FIFO-ness and partitions, all of which are modelled here.
Default latencies follow the paper's setup (section 7.2): 0.15 ms
intra-cluster, 10 ms carrier Ethernet, 50 ms mobile cellular.

Links are FIFO per direction (TCP/WebRTC data channels are ordered): a
message never overtakes an earlier one on the same directed link.  FIFO
is enforced by clamping a delivery time to the link's previous one and
letting the event loop's sequence number break the tie — the schedule
order *is* the send order — rather than by inflating timestamps
(``+ 1e-6``), which distorted latency and accrued float error under
bursts.  The pre-sequencing behaviour survives as ``fifo_mode="bump"``
so the equivalence property tests can run both orderings side by side.

The send/delivery path is allocation-free: no per-message closure or
handle is created (messages ride ``EventLoop.schedule_fast`` entries),
and same-tick deliveries on one link coalesce into a single batch event.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Optional, Set, Tuple

from ..obs.trace import NULL_RECORDER
from .clock import ClockService
from .events import EventLoop

# Paper latency presets, milliseconds.
LAN_LATENCY_MS = 0.15
ETHERNET_LATENCY_MS = 10.0
CELLULAR_LATENCY_MS = 50.0

#: Charged for messages without a ``wire_size()`` (bare test payloads).
DEFAULT_MESSAGE_BYTES = 16


class LatencyModel:
    """Base latency plus uniform jitter, sampled from the shared RNG."""

    __slots__ = ("base_ms", "jitter_ms")

    def __init__(self, base_ms: float, jitter_ms: float = 0.0):
        if base_ms < 0 or jitter_ms < 0:
            raise ValueError("latencies must be non-negative")
        self.base_ms = base_ms
        self.jitter_ms = jitter_ms

    def sample(self, rng: random.Random) -> float:
        if self.jitter_ms:
            return self.base_ms + rng.uniform(0.0, self.jitter_ms)
        return self.base_ms

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LatencyModel({self.base_ms}±{self.jitter_ms}ms)"


LAN = LatencyModel(LAN_LATENCY_MS, 0.05)
ETHERNET = LatencyModel(ETHERNET_LATENCY_MS, 2.0)
CELLULAR = LatencyModel(CELLULAR_LATENCY_MS, 10.0)


class NetworkStats:
    """Aggregate counters for benchmark reporting.

    Sends and drops are also attributed to the directed link they
    occurred on, so benchmark and fault-injection reports can say *which*
    link carried (or lost) the traffic rather than only the totals.
    ``bytes_sent`` is a real wire-cost metric: every message carries an
    honest ``wire_size()`` that the network falls back to when a call
    site does not pass an explicit size.

    The counters are cumulative for the simulation's lifetime; a
    benchmark that measures one phase takes a :meth:`snapshot` at the
    phase boundary and reads :meth:`since` afterwards, so warm-up
    traffic is never attributed to the measured phase.
    """

    def __init__(self) -> None:
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        # Loop events spent delivering: one per delivery batch (or per
        # message on the legacy path).  ``messages_delivered`` minus
        # this is the number of heap operations batching saved; the
        # scale bench uses it to report logical (per-message) events.
        self.delivery_events = 0
        self.bytes_sent = 0
        self.drops_by_link: Dict[Tuple[str, str], int] = {}
        #: ``link -> [messages, bytes]`` — one mutable record per
        #: directed link, shared with the network's per-link send state
        #: so the hot path updates it without re-hashing the link key.
        self.link_traffic: Dict[Tuple[str, str], list] = {}

    @property
    def bytes_by_link(self) -> Dict[Tuple[str, str], int]:
        """Per-link byte totals (derived view; see ``link_traffic``)."""
        return {k: v[1] for k, v in self.link_traffic.items() if v[1]}

    @property
    def messages_by_link(self) -> Dict[Tuple[str, str], int]:
        """Per-link message totals (derived view of ``link_traffic``)."""
        return {k: v[0] for k, v in self.link_traffic.items() if v[0]}

    def snapshot(self) -> "NetworkStats":
        """Frozen copy of every counter, for phase accounting."""
        copy = NetworkStats()
        copy.messages_sent = self.messages_sent
        copy.messages_delivered = self.messages_delivered
        copy.messages_dropped = self.messages_dropped
        copy.delivery_events = self.delivery_events
        copy.bytes_sent = self.bytes_sent
        copy.drops_by_link = dict(self.drops_by_link)
        copy.link_traffic = {k: v[:] for k, v in self.link_traffic.items()}
        return copy

    def since(self, baseline: "NetworkStats") -> "NetworkStats":
        """Counters accumulated after ``baseline`` was snapshotted.

        The returned object supports the same per-link accessors
        (``bytes_on`` etc.), so phase measurements read identically to
        lifetime ones.  ``baseline`` must be an earlier snapshot of the
        *same* stats stream — a later one raises rather than returning
        negative traffic.
        """
        delta = NetworkStats()
        delta.messages_sent = self.messages_sent - baseline.messages_sent
        delta.messages_delivered = \
            self.messages_delivered - baseline.messages_delivered
        delta.messages_dropped = \
            self.messages_dropped - baseline.messages_dropped
        delta.delivery_events = \
            self.delivery_events - baseline.delivery_events
        delta.bytes_sent = self.bytes_sent - baseline.bytes_sent
        if delta.messages_sent < 0 or delta.bytes_sent < 0:
            raise ValueError("baseline is newer than these stats")
        for link, value in self.drops_by_link.items():
            diff = value - baseline.drops_by_link.get(link, 0)
            if diff:
                delta.drops_by_link[link] = diff
        for link, record in self.link_traffic.items():
            base = baseline.link_traffic.get(link)
            if base is None:
                if record[0] or record[1]:
                    delta.link_traffic[link] = record[:]
            else:
                diff = [record[0] - base[0], record[1] - base[1]]
                if diff[0] or diff[1]:
                    delta.link_traffic[link] = diff
        return delta

    def publish(self, registry: Any, prefix: str = "net") -> None:
        """Export the current totals into a MetricsRegistry as gauges.

        Gauges (not counters) because these are point-in-time captures
        of cumulative totals: re-publishing must overwrite, and merging
        registries from the same stream must not double-count.
        """
        registry.gauge(f"{prefix}.messages_sent").set(self.messages_sent)
        registry.gauge(f"{prefix}.messages_delivered").set(
            self.messages_delivered)
        registry.gauge(f"{prefix}.messages_dropped").set(
            self.messages_dropped)
        registry.gauge(f"{prefix}.bytes_sent").set(self.bytes_sent)
        for (src, dst), value in sorted(self.bytes_by_link.items()):
            registry.gauge(f"{prefix}.link.{src}->{dst}.bytes").set(value)
        for (src, dst), value in sorted(self.messages_by_link.items()):
            registry.gauge(
                f"{prefix}.link.{src}->{dst}.messages").set(value)
        for (src, dst), value in sorted(self.drops_by_link.items()):
            registry.gauge(f"{prefix}.link.{src}->{dst}.drops").set(value)

    def traffic_record(self, link: Tuple[str, str]) -> list:
        """The mutable ``[messages, bytes]`` record for a link."""
        record = self.link_traffic.get(link)
        if record is None:
            record = self.link_traffic[link] = [0, 0]
        return record

    def record_send(self, src: str, dst: str, size_bytes: int) -> None:
        self.messages_sent += 1
        self.bytes_sent += size_bytes
        record = self.traffic_record((src, dst))
        record[0] += 1
        record[1] += size_bytes

    def record_drop(self, src: str, dst: str) -> None:
        self.messages_dropped += 1
        link = (src, dst)
        self.drops_by_link[link] = self.drops_by_link.get(link, 0) + 1

    def dropped_on(self, src: str, dst: str) -> int:
        """Messages dropped on the directed link ``src -> dst``."""
        return self.drops_by_link.get((src, dst), 0)

    def bytes_on(self, src: str, dst: str) -> int:
        """Bytes queued on the directed link ``src -> dst``."""
        record = self.link_traffic.get((src, dst))
        return record[1] if record else 0

    def messages_on(self, src: str, dst: str) -> int:
        """Messages queued on the directed link ``src -> dst``."""
        record = self.link_traffic.get((src, dst))
        return record[0] if record else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"NetworkStats(sent={self.messages_sent},"
                f" delivered={self.messages_delivered},"
                f" dropped={self.messages_dropped},"
                f" bytes={self.bytes_sent})")


class Network:
    """Directed message delivery between named nodes."""

    def __init__(self, loop: EventLoop, rng: random.Random,
                 default_latency: Optional[LatencyModel] = None,
                 fifo_mode: str = "seq", seed: int = 0):
        self._loop = loop
        self._rng = rng
        #: Determinism root actors derive default RNGs from (see
        #: ``repro.transport.base.Transport.seed``).
        self.seed = seed
        self._transport_view: Any = None
        self._default = default_latency or LatencyModel(1.0)
        self._links: Dict[Tuple[str, str], LatencyModel] = {}
        self._handlers: Dict[str, Callable[[Any, str], None]] = {}
        self._cut: Set[frozenset] = set()
        self._down: Set[str] = set()
        self._loss_rate: Dict[Tuple[str, str], float] = {}
        #: One mutable record per directed link, so ``send`` resolves
        #: everything link-scoped with a single dict lookup:
        #: ``[model, traffic, last_delivery, tail_time, tail_batch]``
        #: where ``traffic`` is the ``[messages, bytes]`` list shared
        #: with ``stats.link_traffic``, ``last_delivery`` is the latest
        #: scheduled delivery time (FIFO clamp), and the tail fields
        #: describe the link's newest not-yet-fired delivery batch (a
        #: send landing on the same instant appends instead of
        #: scheduling another event).
        self._link_state: Dict[Tuple[str, str], list] = {}
        #: ``type -> bool`` memo of which message classes define
        #: ``wire_size`` (saves a getattr per send on the hot path).
        self._wire_sized: Dict[type, bool] = {}
        if fifo_mode not in ("seq", "bump"):
            raise ValueError(f"unknown fifo_mode {fifo_mode!r}")
        #: "seq" (default) orders same-link deliveries by schedule
        #: sequence; "bump" reproduces the historical
        #: ``_last_delivery + 1e-6`` timestamp inflation for
        #: equivalence testing against the old ordering.
        self.fifo_mode = fifo_mode
        self.stats = NetworkStats()
        # Lifecycle trace recorder; actors reach it via ``Actor.obs``.
        # The null default keeps tracing a pure observer: assigning a
        # repro.obs.TraceRecorder here must not change behaviour.
        self.obs = NULL_RECORDER
        # Per-actor skewed physical clocks (zero skew until injected);
        # actors reach them via ``Actor.clock``, chaos injects skew here.
        self.clocks = ClockService(loop)

    def transport_view(self, loop: EventLoop) -> Any:
        """This ``(loop, network)`` pair as a cached ``SimTransport``.

        Actors constructed the legacy way — ``Actor(id, loop, network)``
        — share this one view instead of allocating a transport each,
        which matters at the million-actor scale point.
        """
        view = self._transport_view
        if view is None or view.loop is not loop:
            from ..transport.base import SimTransport
            view = SimTransport(loop, self)
            self._transport_view = view
        return view

    # -- wiring ---------------------------------------------------------------
    def attach(self, node_id: str,
               handler: Callable[[Any, str], None]) -> None:
        """Register the message handler of a node."""
        if node_id in self._handlers:
            raise ValueError(f"node {node_id!r} already attached")
        self._handlers[node_id] = handler

    def detach(self, node_id: str) -> None:
        self._handlers.pop(node_id, None)

    def set_link(self, a: str, b: str, model: LatencyModel,
                 symmetric: bool = True) -> None:
        self._links[(a, b)] = model
        state = self._link_state.get((a, b))
        if state is not None:
            state[0] = model
        if symmetric:
            self._links[(b, a)] = model
            state = self._link_state.get((b, a))
            if state is not None:
                state[0] = model

    def set_loss_rate(self, a: str, b: str, rate: float,
                      symmetric: bool = True) -> None:
        """Independent per-message drop probability on the link."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError("loss rate must be in [0, 1]")
        self._loss_rate[(a, b)] = rate
        if symmetric:
            self._loss_rate[(b, a)] = rate

    # -- failures ----------------------------------------------------------------
    def partition(self, a: str, b: str) -> None:
        """Cut the (bidirectional) link between two nodes."""
        self._cut.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        self._cut.discard(frozenset((a, b)))

    def isolate(self, node_id: str) -> None:
        """Disconnect a node from everyone (e.g. it goes offline)."""
        self._down.add(node_id)

    def restore(self, node_id: str) -> None:
        self._down.discard(node_id)

    def is_reachable(self, src: str, dst: str) -> bool:
        if src in self._down or dst in self._down:
            return False
        return frozenset((src, dst)) not in self._cut

    # -- sending ------------------------------------------------------------------
    def send(self, src: str, dst: str, message: Any,
             size_bytes: Optional[int] = None) -> bool:
        """Queue a message for delivery; returns False when unreachable.

        When ``size_bytes`` is None the message's own ``wire_size()`` is
        charged (every protocol message implements it); hot paths that
        already computed the size while encoding pass it explicitly.

        An unreachable destination silently drops the message, as a real
        disconnected socket would: protocols must handle it with retries
        (and they do — that is the point of the paper).
        """
        if size_bytes is None:
            klass = type(message)
            sized = self._wire_sized.get(klass)
            if sized is None:
                sized = self._wire_sized[klass] = \
                    callable(getattr(klass, "wire_size", None))
            size_bytes = message.wire_size() if sized \
                else DEFAULT_MESSAGE_BYTES
        link = (src, dst)
        state = self._link_state.get(link)
        if state is None:
            state = self._link_state[link] = [
                self._links.get(link, self._default),
                self.stats.traffic_record(link), None, -1.0, None]
        stats = self.stats
        stats.messages_sent += 1
        stats.bytes_sent += size_bytes
        traffic = state[1]
        traffic[0] += 1
        traffic[1] += size_bytes
        if (self._down or self._cut) and not self.is_reachable(src, dst):
            stats.record_drop(src, dst)
            return False
        rng = self._rng
        rate = self._loss_rate.get(link) if self._loss_rate else None
        if rate and rng.random() < rate:
            stats.record_drop(src, dst)
            return False
        loop = self._loop
        now = loop.now
        # Inlined LatencyModel.sample: bit-identical to
        # ``base + rng.uniform(0.0, jitter)`` (uniform(0, j) computes
        # ``0.0 + (j - 0.0) * random()``), with the same draw-only-if-
        # jittered rule, minus two call frames per message.
        model = state[0]
        jitter = model.jitter_ms
        latency = model.base_ms + jitter * rng.random() if jitter \
            else model.base_ms
        if self.fifo_mode == "bump":
            # Historical ordering: force strictly increasing per-link
            # delivery times.  Kept only for equivalence testing.
            last = state[2]
            deliver_at = max(now + latency,
                             (last if last is not None else 0.0) + 1e-6)
            state[2] = deliver_at
            loop.schedule_fast(deliver_at - now, self._deliver,
                               (src, dst, message))
            return True
        deliver_at = now + latency
        last = state[2]
        if last is not None and deliver_at < last:
            deliver_at = last       # FIFO clamp; seq breaks the tie
        if state[3] == deliver_at and deliver_at > now:
            # The link's next delivery event fires at exactly this time
            # and has not run yet (strictly in the future): coalesce.
            state[4].append(message)
        else:
            batch = [message]
            state[3] = deliver_at
            state[4] = batch
            loop.schedule_fast_at(deliver_at, self._deliver_batch,
                                  (src, dst, batch))
        state[2] = deliver_at
        return True

    def _deliver_batch(self, src: str, dst: str, batch: list) -> None:
        # Check reachability again at delivery time: a partition that
        # appeared while the batch was in flight kills it (TCP reset).
        stats = self.stats
        stats.delivery_events += 1
        if (self._down or self._cut) and not self.is_reachable(src, dst):
            for _ in batch:
                stats.record_drop(src, dst)
            return
        handlers = self._handlers
        delivered = 0
        for message in batch:
            # Per-message handler lookup: a handler may detach its node
            # mid-batch, and the rest of the batch must then drop.
            handler = handlers.get(dst)
            if handler is None:
                stats.record_drop(src, dst)
                continue
            delivered += 1
            handler(message, src)
        stats.messages_delivered += delivered

    def _deliver(self, src: str, dst: str, message: Any) -> None:
        """Single-message delivery (legacy "bump" ordering path)."""
        self.stats.delivery_events += 1
        if not self.is_reachable(src, dst):
            self.stats.record_drop(src, dst)
            return
        handler = self._handlers.get(dst)
        if handler is None:
            self.stats.record_drop(src, dst)
            return
        self.stats.messages_delivered += 1
        handler(message, src)
