"""Simulated network: links, latency models, partitions.

Substitutes the paper's testbed transports (RabbitMQ between DCs, WebRTC
between peers, `tc` latency shaping): what the protocols observe is only
latency, loss, FIFO-ness and partitions, all of which are modelled here.
Default latencies follow the paper's setup (section 7.2): 0.15 ms
intra-cluster, 10 ms carrier Ethernet, 50 ms mobile cellular.

Links are FIFO per direction (TCP/WebRTC data channels are ordered): a
message never overtakes an earlier one on the same directed link.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Optional, Set, Tuple

from ..obs.trace import NULL_RECORDER
from .events import EventLoop

# Paper latency presets, milliseconds.
LAN_LATENCY_MS = 0.15
ETHERNET_LATENCY_MS = 10.0
CELLULAR_LATENCY_MS = 50.0

#: Charged for messages without a ``wire_size()`` (bare test payloads).
DEFAULT_MESSAGE_BYTES = 16


class LatencyModel:
    """Base latency plus uniform jitter, sampled from the shared RNG."""

    __slots__ = ("base_ms", "jitter_ms")

    def __init__(self, base_ms: float, jitter_ms: float = 0.0):
        if base_ms < 0 or jitter_ms < 0:
            raise ValueError("latencies must be non-negative")
        self.base_ms = base_ms
        self.jitter_ms = jitter_ms

    def sample(self, rng: random.Random) -> float:
        if self.jitter_ms:
            return self.base_ms + rng.uniform(0.0, self.jitter_ms)
        return self.base_ms

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LatencyModel({self.base_ms}±{self.jitter_ms}ms)"


LAN = LatencyModel(LAN_LATENCY_MS, 0.05)
ETHERNET = LatencyModel(ETHERNET_LATENCY_MS, 2.0)
CELLULAR = LatencyModel(CELLULAR_LATENCY_MS, 10.0)


class NetworkStats:
    """Aggregate counters for benchmark reporting.

    Sends and drops are also attributed to the directed link they
    occurred on, so benchmark and fault-injection reports can say *which*
    link carried (or lost) the traffic rather than only the totals.
    ``bytes_sent`` is a real wire-cost metric: every message carries an
    honest ``wire_size()`` that the network falls back to when a call
    site does not pass an explicit size.

    The counters are cumulative for the simulation's lifetime; a
    benchmark that measures one phase takes a :meth:`snapshot` at the
    phase boundary and reads :meth:`since` afterwards, so warm-up
    traffic is never attributed to the measured phase.
    """

    def __init__(self) -> None:
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.bytes_sent = 0
        self.drops_by_link: Dict[Tuple[str, str], int] = {}
        self.bytes_by_link: Dict[Tuple[str, str], int] = {}
        self.messages_by_link: Dict[Tuple[str, str], int] = {}

    def snapshot(self) -> "NetworkStats":
        """Frozen copy of every counter, for phase accounting."""
        copy = NetworkStats()
        copy.messages_sent = self.messages_sent
        copy.messages_delivered = self.messages_delivered
        copy.messages_dropped = self.messages_dropped
        copy.bytes_sent = self.bytes_sent
        copy.drops_by_link = dict(self.drops_by_link)
        copy.bytes_by_link = dict(self.bytes_by_link)
        copy.messages_by_link = dict(self.messages_by_link)
        return copy

    def since(self, baseline: "NetworkStats") -> "NetworkStats":
        """Counters accumulated after ``baseline`` was snapshotted.

        The returned object supports the same per-link accessors
        (``bytes_on`` etc.), so phase measurements read identically to
        lifetime ones.  ``baseline`` must be an earlier snapshot of the
        *same* stats stream — a later one raises rather than returning
        negative traffic.
        """
        delta = NetworkStats()
        delta.messages_sent = self.messages_sent - baseline.messages_sent
        delta.messages_delivered = \
            self.messages_delivered - baseline.messages_delivered
        delta.messages_dropped = \
            self.messages_dropped - baseline.messages_dropped
        delta.bytes_sent = self.bytes_sent - baseline.bytes_sent
        if delta.messages_sent < 0 or delta.bytes_sent < 0:
            raise ValueError("baseline is newer than these stats")
        for mine, theirs, out in (
                (self.drops_by_link, baseline.drops_by_link,
                 delta.drops_by_link),
                (self.bytes_by_link, baseline.bytes_by_link,
                 delta.bytes_by_link),
                (self.messages_by_link, baseline.messages_by_link,
                 delta.messages_by_link)):
            for link, value in mine.items():
                diff = value - theirs.get(link, 0)
                if diff:
                    out[link] = diff
        return delta

    def publish(self, registry: Any, prefix: str = "net") -> None:
        """Export the current totals into a MetricsRegistry as gauges.

        Gauges (not counters) because these are point-in-time captures
        of cumulative totals: re-publishing must overwrite, and merging
        registries from the same stream must not double-count.
        """
        registry.gauge(f"{prefix}.messages_sent").set(self.messages_sent)
        registry.gauge(f"{prefix}.messages_delivered").set(
            self.messages_delivered)
        registry.gauge(f"{prefix}.messages_dropped").set(
            self.messages_dropped)
        registry.gauge(f"{prefix}.bytes_sent").set(self.bytes_sent)
        for (src, dst), value in sorted(self.bytes_by_link.items()):
            registry.gauge(f"{prefix}.link.{src}->{dst}.bytes").set(value)
        for (src, dst), value in sorted(self.messages_by_link.items()):
            registry.gauge(
                f"{prefix}.link.{src}->{dst}.messages").set(value)
        for (src, dst), value in sorted(self.drops_by_link.items()):
            registry.gauge(f"{prefix}.link.{src}->{dst}.drops").set(value)

    def record_send(self, src: str, dst: str, size_bytes: int) -> None:
        self.messages_sent += 1
        self.bytes_sent += size_bytes
        link = (src, dst)
        self.bytes_by_link[link] = \
            self.bytes_by_link.get(link, 0) + size_bytes
        self.messages_by_link[link] = \
            self.messages_by_link.get(link, 0) + 1

    def record_drop(self, src: str, dst: str) -> None:
        self.messages_dropped += 1
        link = (src, dst)
        self.drops_by_link[link] = self.drops_by_link.get(link, 0) + 1

    def dropped_on(self, src: str, dst: str) -> int:
        """Messages dropped on the directed link ``src -> dst``."""
        return self.drops_by_link.get((src, dst), 0)

    def bytes_on(self, src: str, dst: str) -> int:
        """Bytes queued on the directed link ``src -> dst``."""
        return self.bytes_by_link.get((src, dst), 0)

    def messages_on(self, src: str, dst: str) -> int:
        """Messages queued on the directed link ``src -> dst``."""
        return self.messages_by_link.get((src, dst), 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"NetworkStats(sent={self.messages_sent},"
                f" delivered={self.messages_delivered},"
                f" dropped={self.messages_dropped},"
                f" bytes={self.bytes_sent})")


class Network:
    """Directed message delivery between named nodes."""

    def __init__(self, loop: EventLoop, rng: random.Random,
                 default_latency: Optional[LatencyModel] = None):
        self._loop = loop
        self._rng = rng
        self._default = default_latency or LatencyModel(1.0)
        self._links: Dict[Tuple[str, str], LatencyModel] = {}
        self._handlers: Dict[str, Callable[[Any, str], None]] = {}
        self._last_delivery: Dict[Tuple[str, str], float] = {}
        self._cut: Set[frozenset] = set()
        self._down: Set[str] = set()
        self._loss_rate: Dict[Tuple[str, str], float] = {}
        self.stats = NetworkStats()
        # Lifecycle trace recorder; actors reach it via ``Actor.obs``.
        # The null default keeps tracing a pure observer: assigning a
        # repro.obs.TraceRecorder here must not change behaviour.
        self.obs = NULL_RECORDER

    # -- wiring ---------------------------------------------------------------
    def attach(self, node_id: str,
               handler: Callable[[Any, str], None]) -> None:
        """Register the message handler of a node."""
        if node_id in self._handlers:
            raise ValueError(f"node {node_id!r} already attached")
        self._handlers[node_id] = handler

    def detach(self, node_id: str) -> None:
        self._handlers.pop(node_id, None)

    def set_link(self, a: str, b: str, model: LatencyModel,
                 symmetric: bool = True) -> None:
        self._links[(a, b)] = model
        if symmetric:
            self._links[(b, a)] = model

    def set_loss_rate(self, a: str, b: str, rate: float,
                      symmetric: bool = True) -> None:
        """Independent per-message drop probability on the link."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError("loss rate must be in [0, 1]")
        self._loss_rate[(a, b)] = rate
        if symmetric:
            self._loss_rate[(b, a)] = rate

    # -- failures ----------------------------------------------------------------
    def partition(self, a: str, b: str) -> None:
        """Cut the (bidirectional) link between two nodes."""
        self._cut.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        self._cut.discard(frozenset((a, b)))

    def isolate(self, node_id: str) -> None:
        """Disconnect a node from everyone (e.g. it goes offline)."""
        self._down.add(node_id)

    def restore(self, node_id: str) -> None:
        self._down.discard(node_id)

    def is_reachable(self, src: str, dst: str) -> bool:
        if src in self._down or dst in self._down:
            return False
        return frozenset((src, dst)) not in self._cut

    # -- sending ------------------------------------------------------------------
    def send(self, src: str, dst: str, message: Any,
             size_bytes: Optional[int] = None) -> bool:
        """Queue a message for delivery; returns False when unreachable.

        When ``size_bytes`` is None the message's own ``wire_size()`` is
        charged (every protocol message implements it); hot paths that
        already computed the size while encoding pass it explicitly.

        An unreachable destination silently drops the message, as a real
        disconnected socket would: protocols must handle it with retries
        (and they do — that is the point of the paper).
        """
        if size_bytes is None:
            sizer = getattr(message, "wire_size", None)
            size_bytes = sizer() if sizer is not None \
                else DEFAULT_MESSAGE_BYTES
        self.stats.record_send(src, dst, size_bytes)
        if not self.is_reachable(src, dst):
            self.stats.record_drop(src, dst)
            return False
        rate = self._loss_rate.get((src, dst), 0.0)
        if rate and self._rng.random() < rate:
            self.stats.record_drop(src, dst)
            return False
        model = self._links.get((src, dst), self._default)
        latency = model.sample(self._rng)
        link = (src, dst)
        deliver_at = max(self._loop.now + latency,
                         self._last_delivery.get(link, 0.0) + 1e-6)
        self._last_delivery[link] = deliver_at
        self._loop.schedule_at(deliver_at,
                               lambda: self._deliver(src, dst, message))
        return True

    def _deliver(self, src: str, dst: str, message: Any) -> None:
        # Check reachability again at delivery time: a partition that
        # appeared while the message was in flight kills it (TCP reset).
        if not self.is_reachable(src, dst):
            self.stats.record_drop(src, dst)
            return
        handler = self._handlers.get(dst)
        if handler is None:
            self.stats.record_drop(src, dst)
            return
        self.stats.messages_delivered += 1
        handler(message, src)
