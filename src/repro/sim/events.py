"""Event heap, timer wheel and simulation clock.

Time is a float in **milliseconds**.  Determinism: ties break by a
monotonically increasing sequence number, and all randomness must come
from the simulation's seeded RNG, so a run is a pure function of its
seed.

Fast-path design (the sim core is the throughput bottleneck at
10^4-10^6 simulated nodes):

* The priority queue holds plain ``(time, seq, callback, args)`` tuples,
  so heap sift compares resolve with C tuple comparison on ``(time,
  seq)`` instead of a Python-level ``Event.__lt__`` call per step.
  ``seq`` is unique, so slots 2-3 are never compared and may hold
  arbitrary (even mutually incomparable) values.
* A **timer wheel** absorbs the dominant near-future event population
  (periodic protocol timers — sync pings, retry ticks, keepalives,
  Nagle flushes — and in-flight message deliveries): scheduling into a
  wheel slot is an O(1) append instead of an O(log n) sift against every
  pending far-future event.  When the clock reaches a slot it is sorted
  once and drained directly (merged entry-by-entry against the heap
  head), so a wheel entry never pays a heap push/pop; the exact global
  ``(time, seq)`` order is preserved because ``seq`` is unique.
* Cancellable events (``schedule``) carry an :class:`Event` handle in
  the callback slot; the hot paths (message delivery, periodic ticks)
  use ``schedule_fast`` and allocate nothing beyond the entry tuple.
* ``pending()`` is O(1): a live counter is maintained on schedule,
  cancel and pop instead of scanning the heap.
* Cancelled entries are dropped lazily when popped or when their wheel
  slot flushes; if cancellations ever outnumber half the queued entries
  the structures are compacted eagerly so a cancel-heavy workload
  cannot grow the queue without bound.

Budget semantics of :meth:`EventLoop.run`: ``max_events`` bounds how
many events one call processes.  When the budget runs out, the clock
advances as far as it can without skipping work — to ``min(until,
next-pending-event-time)`` when ``until`` was given, else it stays at
the last processed event.  Events are never skipped: a subsequent
``run`` resumes exactly where the budget cut off.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

_PENDING, _FIRED, _CANCELLED = 0, 1, 2


class Event:
    """Handle for a cancellable scheduled callback."""

    __slots__ = ("time", "seq", "callback", "_state", "_loop")

    def __init__(self, time: float, seq: int,
                 callback: Callable[[], None], loop: "EventLoop"):
        self.time = time
        self.seq = seq
        self.callback = callback
        self._state = _PENDING
        self._loop = loop

    @property
    def cancelled(self) -> bool:
        return self._state == _CANCELLED

    def cancel(self) -> None:
        """Cancel if still pending; cancelling a fired event is a no-op."""
        if self._state == _PENDING:
            self._state = _CANCELLED
            self._loop._note_cancel()


class EventLoop:
    """Timer-wheel + priority-queue event loop with a virtual clock."""

    #: Wheel geometry: 512 slots of 4 ms cover ~2 s of look-ahead, which
    #: spans every periodic protocol timer (0.25-1000 ms) and all
    #: modelled link latencies.  Events beyond the horizon go straight
    #: to the heap (they are rare: long settle timers, far schedules).
    WHEEL_SLOT_MS = 4.0
    WHEEL_SLOTS = 512

    #: Compact when more than half the queued entries are cancelled
    #: (and there is enough garbage for the rebuild to pay off).
    COMPACT_MIN_CANCELLED = 64

    def __init__(self) -> None:
        self._heap: List[Tuple] = []
        self._seq = 0
        self._now = 0.0
        self._processed = 0
        self._live = 0          # non-cancelled entries still queued
        self._cancelled = 0     # cancelled entries not yet dropped
        self._wheel: List[List[Tuple]] = \
            [[] for _ in range(self.WHEEL_SLOTS)]
        self._wheel_count = 0   # entries currently in wheel slots
        self._cursor = 0        # first un-flushed absolute slot index
        self._slot_inv = 1.0 / self.WHEEL_SLOT_MS
        #: The most recently flushed wheel slot, sorted next-event-last
        #: so draining is ``list.pop()``.  Wheel entries are consumed
        #: straight from here (merged against the heap head on the fly)
        #: instead of transiting the heap: one amortised sort replaces a
        #: heappush + heappop per entry.
        self._ready: List[Tuple] = []

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    @property
    def processed_events(self) -> int:
        return self._processed

    # -- scheduling -------------------------------------------------------
    def _insert(self, entry: Tuple) -> None:
        """Route an entry to its wheel slot or to the heap."""
        slot = int(entry[0] * self._slot_inv)
        cursor = self._cursor
        if cursor <= slot < cursor + self.WHEEL_SLOTS:
            self._wheel[slot % self.WHEEL_SLOTS].append(entry)
            self._wheel_count += 1
        else:
            heapq.heappush(self._heap, entry)
        self._live += 1

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` at ``now + delay`` (delay >= 0); cancellable."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        seq = self._seq
        self._seq = seq + 1
        event = Event(self._now + delay, seq, callback, self)
        # ``args is None`` marks a handle-carrying entry; the handle is
        # never compared because seq is unique.
        self._insert((event.time, seq, event, None))
        return event

    def schedule_fast(self, delay: float, callback: Callable[..., None],
                      args: Tuple = ()) -> None:
        """Allocation-free scheduling for events that are never cancelled.

        No :class:`Event` handle (and no closure) is created: the
        callback is invoked as ``callback(*args)``.  This is the hot
        path for message delivery and periodic ticks.
        """
        seq = self._seq
        self._seq = seq + 1
        # _insert, inlined: this and schedule_fast_at are the two
        # hottest functions in a large simulation.
        time = self._now + delay
        slot = int(time * self._slot_inv)
        cursor = self._cursor
        if cursor <= slot < cursor + self.WHEEL_SLOTS:
            self._wheel[slot % self.WHEEL_SLOTS].append(
                (time, seq, callback, args))
            self._wheel_count += 1
        else:
            heapq.heappush(self._heap, (time, seq, callback, args))
        self._live += 1

    def schedule_fast_at(self, time: float, callback: Callable[..., None],
                         args: Tuple = ()) -> None:
        """Absolute-time variant of :meth:`schedule_fast`.

        The entry fires at exactly ``time`` (clamped to ``now``), with no
        relative-delay float round-trip — callers that key state on the
        delivery timestamp (the network's per-link batches) rely on the
        entry time matching their own ``time`` bit for bit.
        """
        if time < self._now:
            time = self._now
        seq = self._seq
        self._seq = seq + 1
        slot = int(time * self._slot_inv)
        cursor = self._cursor
        if cursor <= slot < cursor + self.WHEEL_SLOTS:
            self._wheel[slot % self.WHEEL_SLOTS].append(
                (time, seq, callback, args))
            self._wheel_count += 1
        else:
            heapq.heappush(self._heap, (time, seq, callback, args))
        self._live += 1

    def schedule_at(self, time: float,
                    callback: Callable[[], None]) -> Event:
        """Run ``callback`` at absolute ``time`` (>= now)."""
        return self.schedule(max(0.0, time - self._now), callback)

    def _note_cancel(self) -> None:
        self._live -= 1
        self._cancelled += 1
        if (self._cancelled > self.COMPACT_MIN_CANCELLED
                and self._cancelled * 2
                > len(self._heap) + self._wheel_count):
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry and re-heapify (rare, amortised).

        Mutates the containers in place: ``run``/``step`` hold local
        aliases to the heap and ready buffer across callbacks, and a
        cancellation inside a callback may land here.
        """
        self._heap[:] = [e for e in self._heap
                         if e[3] is not None or e[2]._state != _CANCELLED]
        heapq.heapify(self._heap)
        if self._ready:
            self._ready[:] = [e for e in self._ready
                              if e[3] is not None
                              or e[2]._state != _CANCELLED]
        for i, slot in enumerate(self._wheel):
            if slot:
                kept = [e for e in slot
                        if e[3] is not None or e[2]._state != _CANCELLED]
                self._wheel_count -= len(slot) - len(kept)
                self._wheel[i] = kept
        self._cancelled = 0

    # -- wheel flushing ----------------------------------------------------
    def _refill_ready(self) -> bool:
        """Advance the cursor to the next non-empty slot; fill ``_ready``.

        The slot's surviving entries are sorted next-event-**last** so
        the execution loops drain them with ``list.pop()``, merging
        against the heap head entry by entry — no per-entry heap trip.
        Returns False when the wheel and the heap are both exhausted
        (the ready buffer is empty whenever this is called).

        Empty slots just advance the cursor; the execution loops pop
        the heap directly once its head falls below the cursor edge, so
        skipping ahead here never overtakes an earlier heap entry.
        """
        wheel = self._wheel
        n_slots = self.WHEEL_SLOTS
        while self._wheel_count:
            slot = wheel[self._cursor % n_slots]
            self._cursor += 1
            if not slot:
                continue
            self._wheel_count -= len(slot)
            kept = [e for e in slot
                    if e[3] is not None or e[2]._state != _CANCELLED]
            self._cancelled -= len(slot) - len(kept)
            del slot[:]
            if not kept:
                continue
            kept.sort(reverse=True)
            self._ready.extend(kept)
            return True
        return bool(self._heap)

    # -- execution --------------------------------------------------------
    def step(self) -> bool:
        """Process the next event; False when nothing is queued."""
        heap = self._heap
        ready = self._ready
        slot_ms = self.WHEEL_SLOT_MS
        while True:
            if ready:
                entry = ready[-1]
                if heap and heap[0] < entry:
                    entry = heapq.heappop(heap)
                else:
                    ready.pop()
            elif heap and (not self._wheel_count
                           or heap[0][0] < self._cursor * slot_ms):
                entry = heapq.heappop(heap)
            elif self._refill_ready():
                continue
            else:
                return False
            time_, _seq, cb, args = entry
            if args is None:                    # handle-carrying entry
                if cb._state == _CANCELLED:
                    self._cancelled -= 1
                    continue
                cb._state = _FIRED
                self._now = time_
                self._processed += 1
                self._live -= 1
                cb.callback()
            else:
                self._now = time_
                self._processed += 1
                self._live -= 1
                cb(*args)
            return True

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Drain events, optionally stopping at a time or event budget.

        See the module docstring for the exact budget semantics: on
        budget exhaustion the clock still advances to ``min(until,
        next-pending-event-time)`` — never past pending work.

        The next entry is found by merging three sources that are each
        already ordered: the ready buffer (the drained wheel slot), the
        heap, and the wheel (whose entries all sit at or beyond the
        cursor edge, so they cannot precede a heap head strictly below
        it).  Ties break on the unique ``seq``, so the merge reproduces
        the exact global ``(time, seq)`` order a single heap would give.
        """
        heap = self._heap
        ready = self._ready
        budget = max_events
        pop = heapq.heappop
        slot_ms = self.WHEEL_SLOT_MS
        while True:
            from_ready = False
            if ready:
                head = ready[-1]
                if heap and heap[0] < head:
                    head_time = heap[0][0]
                else:
                    from_ready = True
                    head_time = head[0]
            elif heap and (not self._wheel_count
                           or heap[0][0] < self._cursor * slot_ms):
                head_time = heap[0][0]
            elif self._refill_ready():
                continue
            else:
                break
            if until is not None and head_time > until:
                self._now = until
                return
            if budget is not None and budget <= 0:
                if until is not None:
                    # Advance as far as the budget allows without
                    # skipping the pending head.
                    self._now = max(self._now, min(until, head_time))
                return
            time_, _seq, cb, args = ready.pop() if from_ready \
                else pop(heap)
            if args is None:
                if cb._state == _CANCELLED:
                    self._cancelled -= 1
                    continue
                cb._state = _FIRED
                self._now = time_
                self._processed += 1
                self._live -= 1
                if budget is not None:
                    budget -= 1
                cb.callback()
            else:
                self._now = time_
                self._processed += 1
                self._live -= 1
                if budget is not None:
                    budget -= 1
                cb(*args)
        if until is not None and until > self._now:
            self._now = until

    def pending(self) -> int:
        """Live (non-cancelled) queued events — O(1), counter-backed."""
        return self._live
