"""Event heap and simulation clock.

Time is a float in **milliseconds**.  Determinism: ties on the heap break by
a monotonically increasing sequence number, and all randomness must come
from the simulation's seeded RNG, so a run is a pure function of its seed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional


class Event:
    """A scheduled callback; cancellable."""

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class EventLoop:
    """Priority-queue event loop with a virtual clock."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def processed_events(self) -> int:
        return self._processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` at ``now + delay`` (delay >= 0)."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        event = Event(self._now + delay, next(self._seq), callback)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float,
                    callback: Callable[[], None]) -> Event:
        """Run ``callback`` at absolute ``time`` (>= now)."""
        return self.schedule(max(0.0, time - self._now), callback)

    def step(self) -> bool:
        """Process the next event; False when the heap is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._processed += 1
            event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Drain events, optionally stopping at a time or event budget."""
        budget = max_events
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and head.time > until:
                self._now = until
                return
            if budget is not None:
                if budget <= 0:
                    return
                budget -= 1
            self.step()
        if until is not None and until > self._now:
            self._now = until

    def pending(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)
