"""Simulation façade tying the loop, network and actors together."""

from __future__ import annotations

import random
from typing import Any, Dict, Optional, Type, TypeVar

from .actor import Actor
from .events import EventLoop
from .network import LatencyModel, Network

A = TypeVar("A", bound=Actor)


class Simulation:
    """One deterministic simulated world.

    >>> sim = Simulation(seed=7)
    >>> # actors = sim.spawn(MyActor, "node-1", ...)
    >>> sim.run(until=1000.0)   # advance one simulated second
    """

    def __init__(self, seed: int = 0,
                 default_latency: Optional[LatencyModel] = None):
        self.seed = seed
        self.rng = random.Random(seed)
        self.loop = EventLoop()
        self.network = Network(self.loop, self.rng, default_latency)
        self.actors: Dict[str, Actor] = {}

    @property
    def now(self) -> float:
        return self.loop.now

    def spawn(self, cls: Type[A], node_id: str, *args: Any,
              **kwargs: Any) -> A:
        """Create an actor wired to this simulation.

        Each actor receives its own RNG derived deterministically from the
        simulation seed and its id, so adding an actor does not perturb the
        random streams of the others.
        """
        if node_id in self.actors:
            raise ValueError(f"duplicate actor id {node_id!r}")
        actor_rng = random.Random(f"{self.seed}/{node_id}")
        actor = cls(node_id, self.loop, self.network, *args,
                    rng=actor_rng, **kwargs)
        self.actors[node_id] = actor
        return actor

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        self.loop.run(until=until, max_events=max_events)

    def run_for(self, duration: float) -> None:
        self.run(until=self.loop.now + duration)

    def actor(self, node_id: str) -> Actor:
        return self.actors[node_id]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Simulation(seed={self.seed}, t={self.loop.now:.3f}ms,"
                f" actors={len(self.actors)})")
