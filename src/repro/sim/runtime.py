"""Simulation façade tying the loop, network and actors together."""

from __future__ import annotations

import contextlib
import gc
import random
from typing import Any, Dict, Iterator, Optional, Tuple, Type, TypeVar

from .actor import Actor
from .events import EventLoop
from .network import LatencyModel, Network

A = TypeVar("A", bound=Actor)


class Simulation:
    """One deterministic simulated world.

    >>> sim = Simulation(seed=7)
    >>> # actors = sim.spawn(MyActor, "node-1", ...)
    >>> sim.run(until=1000.0)   # advance one simulated second
    """

    def __init__(self, seed: int = 0,
                 default_latency: Optional[LatencyModel] = None,
                 fifo_mode: str = "seq"):
        self.seed = seed
        self.rng = random.Random(seed)
        self.loop = EventLoop()
        self.network = Network(self.loop, self.rng, default_latency,
                               fifo_mode=fifo_mode, seed=seed)
        self.actors: Dict[str, Actor] = {}

    @property
    def now(self) -> float:
        return self.loop.now

    def spawn(self, cls: Type[A], node_id: str, *args: Any,
              **kwargs: Any) -> A:
        """Create an actor wired to this simulation.

        Each actor receives its own RNG derived deterministically from the
        simulation seed and its id, so adding an actor does not perturb the
        random streams of the others.
        """
        if node_id in self.actors:
            raise ValueError(f"duplicate actor id {node_id!r}")
        actor_rng = random.Random(f"{self.seed}/{node_id}")
        actor = cls(node_id, self.loop, self.network, *args,
                    rng=actor_rng, **kwargs)
        self.actors[node_id] = actor
        return actor

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        self.loop.run(until=until, max_events=max_events)

    def run_for(self, duration: float) -> None:
        self.run(until=self.loop.now + duration)

    #: Generation thresholds while a world is frozen: collect young
    #: garbage rarely enough that in-flight deliveries (which live for
    #: one link latency, tens of thousands of events) stop being
    #: promoted and rescanned by every older-generation pass.
    GC_FROZEN_THRESHOLDS: Tuple[int, int, int] = (100_000, 20, 20)

    @contextlib.contextmanager
    def frozen_world(self) -> Iterator[int]:
        """Exclude the built world from cyclic-GC scanning while running.

        A large simulated world is millions of live, effectively
        immortal objects (actors, journals, link state).  CPython's
        generational collector rescans all of them on every gen-2 pass,
        and the in-flight delivery churn (~one entry per link latency)
        keeps triggering those passes — at 10^4+ nodes this costs more
        wall-clock than the simulation itself (2-3x at 10^4).  This
        context collects once, moves the current heap into the
        permanent generation (``gc.freeze``), and widens the
        generation thresholds; on exit everything is restored, so a
        later collection can still reclaim the world.  Collection stays
        *enabled* throughout — cyclic garbage created while frozen is
        still reclaimed, just less often.

        Yields the number of objects frozen.  Purely a wall-clock
        optimisation: GC has no observable effect on simulation
        behaviour, so event streams and digests are unchanged.
        """
        old_thresholds = gc.get_threshold()
        gc.collect()
        gc.freeze()
        gc.set_threshold(*self.GC_FROZEN_THRESHOLDS)
        try:
            yield gc.get_freeze_count()
        finally:
            gc.set_threshold(*old_thresholds)
            gc.unfreeze()

    def actor(self, node_id: str) -> Actor:
        return self.actors[node_id]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Simulation(seed={self.seed}, t={self.loop.now:.3f}ms,"
                f" actors={len(self.actors)})")
