"""Actor base class: a protocol node driven by the simulation.

Protocol logic lives in sans-io state machines; :class:`Actor` is the thin
shell binding one to the event loop and the network.  Subclasses implement
``on_message`` and may arm timers.  Fail-stop crashes are modelled by
``crash()``: a crashed actor ignores everything (paper's failure model,
section 3.1).
"""

from __future__ import annotations

import random
from typing import Any, Callable, Optional

from .events import Event, EventLoop
from .network import Network


class Actor:
    """A named node attached to the simulated network."""

    def __init__(self, node_id: str, loop: EventLoop, network: Network,
                 rng: Optional[random.Random] = None):
        self.node_id = node_id
        self.loop = loop
        self.network = network
        self.rng = rng or random.Random(0)
        self.crashed = False
        network.attach(node_id, self._receive)

    # -- messaging ---------------------------------------------------------
    def send(self, dst: str, message: Any,
             size_bytes: Optional[int] = None) -> bool:
        """Send; ``size_bytes`` defaults to the message's ``wire_size()``."""
        if self.crashed:
            return False
        return self.network.send(self.node_id, dst, message, size_bytes)

    def _receive(self, message: Any, sender: str) -> None:
        if self.crashed:
            return
        self.on_message(message, sender)

    def on_message(self, message: Any, sender: str) -> None:
        raise NotImplementedError

    # -- timers --------------------------------------------------------------
    def set_timer(self, delay: float, callback: Callable[[], None]) -> Event:
        """Arm a timer; the callback is skipped if the actor crashed."""
        def guarded() -> None:
            if not self.crashed:
                callback()
        return self.loop.schedule(delay, guarded)

    def every(self, period: float, callback: Callable[[], None],
              jitter: float = 0.0) -> None:
        """Run ``callback`` every ``period`` ms until the actor crashes."""
        # Rescheduled via the allocation-free path: periodic protocol
        # timers dominate the event population at scale and never need
        # a cancellation handle (crash is checked in the tick itself).
        def tick() -> None:
            if self.crashed:
                return
            callback()
            delay = period + (self.rng.uniform(0, jitter) if jitter else 0.0)
            self.loop.schedule_fast(delay, tick)
        self.loop.schedule_fast(period, tick)

    # -- failure ----------------------------------------------------------------
    def crash(self) -> None:
        """Fail-stop: cease executing permanently."""
        self.crashed = True

    @property
    def now(self) -> float:
        return self.loop.now

    @property
    def clock(self) -> Any:
        """This actor's skewed physical clock (zero skew by default)."""
        return self.network.clocks.clock_for(self.node_id)

    @property
    def obs(self) -> Any:
        """The world's lifecycle trace recorder (a no-op by default).

        Hot paths guard span emission with ``if self.obs.enabled``;
        the recorder itself is passive, so tracing never perturbs
        protocol behaviour.
        """
        return self.network.obs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "crashed" if self.crashed else "up"
        return f"{type(self).__name__}({self.node_id}, {state})"
