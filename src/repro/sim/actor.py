"""Actor base class: a protocol node driven by a transport.

Protocol logic lives in sans-io state machines; :class:`Actor` is the thin
shell binding one to a :class:`~repro.transport.base.Transport` — timers
plus a network.  Subclasses implement ``on_message`` and may arm timers.
The same actor code runs over the discrete-event simulator (pass the
simulator ``loop`` and ``network``, as always) and over real asyncio TCP
sockets (pass an ``AsyncioTransport`` as the sole positional argument).

Fail-stop crashes are modelled by ``crash()``: a crashed actor ignores
everything (paper's failure model, section 3.1).  ``recover()`` brings it
back with a clean timer slate: every timer armed before the crash is
dead — a stale callback closing over pre-crash state must never fire into
post-recovery state — and periodic timers registered via :meth:`every`
are re-armed fresh.
"""

from __future__ import annotations

import random
from typing import Any, Callable, List, Optional, Tuple

from .events import Event, EventLoop
from .network import Network


class Actor:
    """A named node attached to a transport.

    Construction accepts either the simulator pair or a transport::

        Actor("n0", loop, network)   # DES: EventLoop + Network
        Actor("n0", transport)       # any Transport (e.g. asyncio)

    ``self.loop`` and ``self.network`` are always bound to the
    transport's timer and network facets, so subclass code is oblivious
    to which backend it runs on.
    """

    def __init__(self, node_id: str, loop: Any,
                 network: Optional[Network] = None,
                 rng: Optional[random.Random] = None):
        if network is None:
            transport = loop
            if not hasattr(transport, "timers"):
                raise TypeError(
                    "Actor(node_id, transport) needs a Transport; got "
                    f"{type(transport).__name__} (to build over the "
                    "simulator, pass both loop and network)")
        else:
            transport = network.transport_view(loop)
        self.transport = transport
        self.loop = transport.timers
        self.network = transport.net
        self.node_id = node_id
        # Derive the default RNG from the deployment seed and the node
        # id (the same scheme as Simulation.spawn), so actors built
        # without an explicit rng get distinct, reproducible streams
        # instead of all sharing Random(0).
        self.rng = rng or random.Random(f"{transport.seed}/{node_id}")
        self.crashed = False
        # Timers are epoch-guarded: crash() and recover() each bump the
        # epoch, so any callback armed before the transition is dead on
        # arrival even after the actor is back up.
        self._timer_epoch = 0
        #: Periodic timers registered via every(); re-armed on recover().
        self._periodic: List[Tuple[float, Callable[[], None], float]] = []
        self.network.attach(node_id, self._receive)

    # -- messaging ---------------------------------------------------------
    def send(self, dst: str, message: Any,
             size_bytes: Optional[int] = None) -> bool:
        """Send; ``size_bytes`` defaults to the message's ``wire_size()``."""
        if self.crashed:
            return False
        return self.network.send(self.node_id, dst, message, size_bytes)

    def _receive(self, message: Any, sender: str) -> None:
        if self.crashed:
            return
        self.on_message(message, sender)

    def on_message(self, message: Any, sender: str) -> None:
        raise NotImplementedError

    # -- timers --------------------------------------------------------------
    def set_timer(self, delay: float, callback: Callable[[], None]) -> Event:
        """Arm a timer; dead if the actor crashes (even after recovery)."""
        epoch = self._timer_epoch
        def guarded() -> None:
            if not self.crashed and self._timer_epoch == epoch:
                callback()
        return self.loop.schedule(delay, guarded)

    def every(self, period: float, callback: Callable[[], None],
              jitter: float = 0.0) -> None:
        """Run ``callback`` every ``period`` ms while the actor is up.

        The periodic registration survives crashes: ``recover()`` re-arms
        it with a fresh epoch (the pre-crash tick chain is dead).
        """
        self._periodic.append((period, callback, jitter))
        self._arm_periodic(period, callback, jitter)

    def _arm_periodic(self, period: float, callback: Callable[[], None],
                      jitter: float) -> None:
        # Rescheduled via the allocation-free path: periodic protocol
        # timers dominate the event population at scale and never need
        # a cancellation handle (crash/epoch is checked in the tick).
        epoch = self._timer_epoch
        def tick() -> None:
            if self.crashed or self._timer_epoch != epoch:
                return
            callback()
            delay = period + (self.rng.uniform(0, jitter) if jitter else 0.0)
            self.loop.schedule_fast(delay, tick)
        self.loop.schedule_fast(period, tick)

    # -- failure ----------------------------------------------------------------
    def crash(self) -> None:
        """Fail-stop: cease executing until ``recover()`` (if ever)."""
        self.crashed = True
        # Invalidate every armed timer: a callback scheduled pre-crash
        # closes over pre-crash state and must not fire post-recovery.
        self._timer_epoch += 1

    def recover(self) -> None:
        """Come back up with a clean timer slate.

        Pre-crash timers stay dead; periodic timers registered through
        :meth:`every` are re-armed from now.
        """
        if not self.crashed:
            return
        self.crashed = False
        self._timer_epoch += 1
        for period, callback, jitter in self._periodic:
            self._arm_periodic(period, callback, jitter)

    @property
    def now(self) -> float:
        return self.loop.now

    @property
    def clock(self) -> Any:
        """This actor's skewed physical clock (zero skew by default)."""
        return self.network.clocks.clock_for(self.node_id)

    @property
    def obs(self) -> Any:
        """The world's lifecycle trace recorder (a no-op by default).

        Hot paths guard span emission with ``if self.obs.enabled``;
        the recorder itself is passive, so tracing never perturbs
        protocol behaviour.
        """
        return self.network.obs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "crashed" if self.crashed else "up"
        return f"{type(self).__name__}({self.node_id}, {state})"


# Re-exported for subclass modules that type-hint against the simulator
# pair; new code should hint Any/Transport instead.
__all__ = ["Actor", "Event", "EventLoop", "Network"]
