"""Colony: highly-available, consistent group collaboration at the edge.

A faithful Python reproduction of the Middleware 2021 paper by Toumlilt,
Sutra and Shapiro.  Public entry points:

* :mod:`repro.api` — the client API (sessions, buckets, transactions);
* :mod:`repro.bench` — topology deployment and benchmark harness;
* :mod:`repro.crdt` — the operation-based CRDT library;
* :mod:`repro.sim` — the deterministic simulation substrate.
"""

__version__ = "1.0.0"
