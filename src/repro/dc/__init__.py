"""Data-centre SI zone: shard servers, sequencer, geo-replication."""

from .datacenter import DataCenter
from .interest import ShardMap
from .server import ShardServer

__all__ = ["DataCenter", "ShardMap", "ShardServer"]
