"""The data-centre actor: one SI zone, one tree root.

A DC (paper sections 3.4-3.6) is externally a *single sequential node*: its
commits are totally ordered by a sequencer, so one vector component per DC
suffices for causal metadata.  Internally it is a set of shard servers
behind a consistent-hash ring; interactive in-DC transactions commit with a
ClockSI-style two-phase commit across the touched shards.

The DC also:

* terminates edge sessions — tracks interest sets, seeds caches, assigns
  concrete commit timestamps to asynchronously committed edge transactions
  (section 3.7), and pushes K-stable updates back (section 3.8);
* geo-replicates its commit stream to sibling DCs (full mesh, FIFO) and
  tracks K-stability through gossiped acknowledgements;
* executes migrated transactions on behalf of resource-poor edge nodes
  (section 3.9) and serves the AntidoteDB-style baseline clients that have
  no cache at all (section 7.3).
"""

from __future__ import annotations

import bisect
import random
from typing import (Any, Callable, Dict, List, Optional, Set, Tuple,
                    Union)

from ..core.clock import LamportClock, VectorClock
from ..core.dot import Dot, DotTracker
from ..core.kstable import KStabilityTracker
from ..core.txn import CommitStamp, ObjectKey, Snapshot, Transaction, WriteOp
from ..crdt.base import state_from_dict
from ..obs.trace import DC_COMMIT, K_STABLE, REPLICATION
from ..security.enforcement import SecurityEnforcer
from ..sim.actor import Actor
from ..sim.events import EventLoop
from ..sim.network import Network
from ..transport.base import Transport
from .interest import ShardMap, shards_of_mask
from .messages import (HEADER_BYTES, SKIP_MARKER_BYTES, CommitAck,
                       CommitReject, DCSyncPing, EdgeCommit,
                       EdgeCommitBatch, InterestAdvert, InterestChange,
                       ObjectRequest, ObjectResponse, RemoteTxnReply,
                       RemoteTxnRequest, Replicate, ReplicateBatch,
                       ReplicateBatchAck, ReplicatePartialBatch,
                       SessionAck, SessionOpen, ShardApply,
                       ShardApplyBatch, ShardBackfill, ShardCommit,
                       ShardCompactMsg, ShardPrepare, ShardRead,
                       ShardReadReply, ShardVote, StabilityAck, UpdatePush,
                       vector_wire_size)
from .replog import (ReplLink, SkipRun, decode_stream_entry,
                     encode_stream_entry)
from .server import ShardServer
from ..store.ring import HashRing


class _EdgeSession:
    """Per-connected-edge bookkeeping."""

    __slots__ = ("edge_id", "interest")

    def __init__(self, edge_id: str):
        self.edge_id = edge_id
        self.interest: Dict[ObjectKey, str] = {}


class _ReplQueue:
    """One origin stream's receive queue, ordered by origin timestamp.

    Anti-entropy resends interleave with live replication, so one
    origin's transactions can arrive out of stream order.  The queue is
    processed strictly from the head (a blocked head must stall its
    stream); appending blindly would let an out-of-order later
    transaction block the very predecessor that unblocks it.

    Duplicates are filtered by a dot set (kept in sync on ``popleft``)
    and the insert position found by bisect on the origin timestamp, so
    both operations stay O(log n) instead of the naive O(n) scans.
    """

    __slots__ = ("_entries", "_keys", "_dots", "_runs", "_head")

    def __init__(self) -> None:
        # Transactions and (partial mode) SkipRun markers, stream-ordered.
        self._entries: List[Any] = []
        # Origin timestamps parallel to _entries; unknown ts sorts last.
        self._keys: List[float] = []
        self._dots: Set[Dot] = set()
        self._runs: Set[Tuple[int, int, int]] = set()
        self._head = 0

    def __len__(self) -> int:
        return len(self._entries) - self._head

    def head(self) -> Any:
        return self._entries[self._head]

    def popleft(self) -> Any:
        item = self._entries[self._head]
        self._head += 1
        if isinstance(item, SkipRun):
            self._runs.discard((item.start_ts, item.count, item.mask))
        else:
            self._dots.discard(item.dot)
        if self._head >= 32 and self._head * 2 >= len(self._entries):
            del self._entries[:self._head]
            del self._keys[:self._head]
            self._head = 0
        return item

    def insert(self, ts: Optional[int], txn: Transaction) -> bool:
        """Queue in stream order; False when the dot is already queued."""
        if txn.dot in self._dots:
            return False  # a resend already queued; keep the first copy
        key = float("inf") if ts is None else float(ts)
        index = bisect.bisect_right(self._keys, key, lo=self._head)
        self._entries.insert(index, txn)
        self._keys.insert(index, key)
        self._dots.add(txn.dot)
        return True

    def insert_run(self, run: SkipRun) -> bool:
        """Queue a skip run by start position; dedup exact resends."""
        ident = (run.start_ts, run.count, run.mask)
        if ident in self._runs:
            return False
        key = float(run.start_ts)
        index = bisect.bisect_right(self._keys, key, lo=self._head)
        self._entries.insert(index, run)
        self._keys.insert(index, key)
        self._runs.add(ident)
        return True


class _PendingRemoteTxn:
    """A remote transaction waiting for its shard reads."""

    def __init__(self, request: RemoteTxnRequest, client: str,
                 snapshot: Snapshot):
        self.request = request
        self.client = client
        self.snapshot = snapshot
        self.states: Dict[ObjectKey, Any] = {}
        self.waiting_reads: Set[int] = set()


class _Pending2PC:
    """A transaction in its prepare phase across shards."""

    def __init__(self, txn: Transaction, shards: List[str],
                 on_done: Callable[[bool], None]):
        self.txn = txn
        self.shards = shards
        self.votes: Set[str] = set()
        self.on_done = on_done


class DataCenter(Actor):
    """A core-cloud data centre."""

    #: CPU cost charged per client-facing request (remote transaction,
    #: edge commit, object fetch).  Requests queue behind one another, so
    #: the DC saturates under load like the paper's real servers do.
    SERVICE_TIME_MS = 0.25
    #: How often shard base versions are folded forward, and how far the
    #: fold frontier lags the stable vector (in-flight reads at older
    #: snapshots must still materialise).
    COMPACT_PERIOD_MS = 500.0
    #: Period of empty keepalive pushes (gap detection after partitions).
    KEEPALIVE_MS = 1000.0
    #: Anti-entropy between DCs: ping period and max resends per ping.
    SYNC_PERIOD_MS = 500.0
    SYNC_BATCH = 64
    #: Batched log shipping: Nagle-style flush window and frame cap.
    REPL_FLUSH_MS = 1.0
    REPL_BATCH_MAX = 256

    def __init__(self, node_id: str, loop: Union[EventLoop, Transport],
                 network: Optional[Network] = None,
                 peer_dcs: Optional[List[str]] = None,
                 n_shards: int = 4, k_target: int = 1,
                 security: Optional[SecurityEnforcer] = None,
                 service_time_ms: Optional[float] = None,
                 rng: Optional[random.Random] = None,
                 replication_mode: str = "batched",
                 repl_flush_ms: Optional[float] = None,
                 repl_batch_max: Optional[int] = None,
                 shard_map: Optional[ShardMap] = None,
                 k_floor: int = 1):
        super().__init__(node_id, loop, network, rng)
        self.peer_dcs: List[str] = list(peer_dcs or [])
        self.k_target = k_target
        self.security = security
        if replication_mode not in ("batched", "full", "unbatched",
                                    "partial"):
            raise ValueError(
                f"unknown replication mode {replication_mode!r}")
        self.replication_mode = replication_mode
        # "full" is the equivalence alias of "batched": every DC
        # interested in every shard, identical frames on the wire.
        self._batched = replication_mode != "unbatched"
        self._partial = replication_mode == "partial"
        self.repl_flush_ms = (self.REPL_FLUSH_MS if repl_flush_ms is None
                              else repl_flush_ms)
        self.repl_batch_max = (self.REPL_BATCH_MAX
                               if repl_batch_max is None
                               else repl_batch_max)
        self.service_time_ms = (self.SERVICE_TIME_MS
                                if service_time_ms is None
                                else service_time_ms)
        self._busy_until = 0.0
        self._compact_frontier = VectorClock.zero()
        self.every(self.COMPACT_PERIOD_MS, self._compact_shards,
                   jitter=25.0)
        self.every(self.KEEPALIVE_MS, self._keepalive, jitter=50.0)
        self.every(self.SYNC_PERIOD_MS, self._sync_peers, jitter=30.0)

        # -- shards -------------------------------------------------------
        self.ring = HashRing()
        self.shard_ids: List[str] = []
        self.shards: Dict[str, ShardServer] = {}
        for i in range(n_shards):
            shard_id = f"{node_id}/shard{i}"
            self.shards[shard_id] = ShardServer(shard_id, loop, network,
                                                rng=rng)
            self.ring.add_server(shard_id)
            self.shard_ids.append(shard_id)

        # -- commit state -----------------------------------------------------
        self._sequencer = 0
        # Dots for transactions executed *in* this DC (section 3.6/3.9)
        # come from a Lamport clock that observes every applied dot, so
        # dot order keeps extending happened-before.
        self.lamport = LamportClock()
        self.state_vector = VectorClock.zero()
        self.dots = DotTracker()
        self._txn_by_dot: Dict[Dot, Transaction] = {}
        # Per-origin-DC commit streams: ts -> dot, for stability frontiers.
        self._stream_dots: Dict[str, Dict[int, Dot]] = {node_id: {}}
        self.kstab = KStabilityTracker(k_target)
        self.stable_vector = VectorClock.zero()
        self._stable_dots: Set[Dot] = set()
        # Replication receive queues, one per sibling DC stream, kept
        # in origin-timestamp order.
        self._repl_queues: Dict[str, _ReplQueue] = {}
        # Batched log shipping: per-directed-link send state, the best
        # known applied vector of each peer (coalesced stability), a
        # pending-flush guard and the per-drain shard apply buffer.
        self._repl_links: Dict[str, ReplLink] = {}
        self._peer_applied: Dict[str, VectorClock] = {}
        self._repl_flush_scheduled = False
        self._shard_apply_buf: Dict[str, List[dict]] = {}
        # Chain-encoded own-stream entries, shared across every link.
        self._entry_cache: Dict[int, Tuple[dict, int]] = {}
        # Per-link chain encodings for partial mode: pruning makes the
        # previous *shipped* entry link-dependent, so entries are keyed
        # by (previous full entry ts, ts); links with equal interest
        # still share encodings.
        self._partial_entry_cache: Dict[Tuple[int, int],
                                        Tuple[dict, int]] = {}

        # -- partial replication: interest graph --------------------------
        if self._partial and shard_map is None:
            # Default to the all-interested configuration: the partial
            # machinery runs (adverts, per-shard invariants) but never
            # prunes, which is the digest-equivalence baseline.
            shard_map = ShardMap(8, [node_id, *self.peer_dcs])
        self.shard_map = shard_map
        self.k_floor = k_floor
        # Interest = shards we serve (from the shared map) union shards
        # any attached edge session subscribes to (refcounted below).
        self._interest_mask = (shard_map.served(node_id)
                               if self._partial and shard_map else 0)
        self._interest_seq = 0
        self._peer_interest: Dict[str, int] = {}
        self._peer_interest_seq: Dict[str, int] = {}
        if self._partial and shard_map is not None:
            for peer in self.peer_dcs:
                self._peer_interest[peer] = shard_map.served(peer)
                self._peer_interest_seq[peer] = 0
        # Shard mask of each own-stream position (at sequencing time).
        self._stream_masks: Dict[int, int] = {}
        # (shard mask, stream origin) of every entry we hold, for the
        # interested-replica K-stability rule.
        self._entry_meta: Dict[Dot, Tuple[int, str]] = {}
        # Applied skip runs per origin, sorted by start (the flat
        # frontier covers them without a stored entry).
        self._skip_runs: Dict[str, List[SkipRun]] = {}
        self._skip_starts: Dict[str, List[int]] = {}
        # Shard -> peers still owing a ShardBackfill response.
        self._pending_backfill: Dict[int, Set[str]] = {}
        # Session-driven interest refcounts per shard.
        self._shard_refs: Dict[int, int] = {}
        # Read gathers blocked on backfill: (needed mask, fire).
        self._deferred_gathers: List[Tuple[int, Callable[[], None]]] = []

        # -- sessions / pending work -----------------------------------------------
        self.sessions: Dict[str, _EdgeSession] = {}
        # Inverted interest index: key -> edge ids whose session declared
        # it.  Lets the stability push fan-out find the audience of a
        # transaction in O(keys) instead of scanning every session's
        # interest set per push.
        self._sessions_by_key: Dict[ObjectKey, Set[str]] = {}
        self._next_request = 0
        self._read_gathers: Dict[int, Tuple[Set[int], Dict[int, dict],
                                            Callable[[List[dict]], None],
                                            List[int]]] = {}
        self._pending_2pc: Dict[int, _Pending2PC] = {}
        self._next_txid = 0
        self._remote_request_dots: Dict[Tuple[str, int], Dot] = {}
        # Txns committed here but not yet K-stable, per edge push cursor:
        self._pushed_stable = VectorClock.zero()

        # ``replicated_in`` counts remote transactions actually applied
        # (once each); duplicate or stale stream entries — anti-entropy
        # resends, migration copies — land in ``repl_dup_in`` instead.
        self.stats = {"committed": 0, "replicated_in": 0,
                      "edge_commits": 0, "remote_txns": 0,
                      "rejected": 0, "repl_batches_out": 0,
                      "repl_batches_in": 0, "repl_acks_out": 0,
                      "repl_acks_in": 0, "repl_dup_in": 0,
                      "repl_pruned_txns": 0, "repl_pruned_bytes": 0,
                      "repl_backfills_out": 0, "repl_backfills_in": 0,
                      "repl_adverts_in": 0}

    # ------------------------------------------------------------------
    # message dispatch
    # ------------------------------------------------------------------
    def on_message(self, message: Any, sender: str) -> None:
        if isinstance(message, (EdgeCommit, EdgeCommitBatch,
                                RemoteTxnRequest,
                                ObjectRequest)) and self.service_time_ms:
            # Client-facing work queues behind a single service pipeline.
            cost = self.service_time_ms
            if isinstance(message, EdgeCommitBatch):
                cost *= max(1, len(message.txns))
            self._busy_until = max(self._busy_until, self.now) + cost
            delay = self._busy_until - self.now
            self.loop.schedule(
                delay, lambda: self._dispatch(message, sender))
            return
        self._dispatch(message, sender)

    def _compact_shards(self) -> None:
        """Tell shards to fold bases up to a lagged stable frontier."""
        frontier = self._compact_frontier
        if len(frontier):
            message = ShardCompactMsg(frontier.to_dict())
            for shard in self.shard_ids:
                self.send(shard, message)
        self._compact_frontier = self.stable_vector

    def _dispatch(self, message: Any, sender: str) -> None:
        if isinstance(message, SessionOpen):
            self._on_session_open(message, sender)
        elif isinstance(message, InterestChange):
            self._on_interest_change(message, sender)
        elif isinstance(message, ObjectRequest):
            self._on_object_request(message, sender)
        elif isinstance(message, EdgeCommit):
            self._on_edge_commit(message, sender)
        elif isinstance(message, EdgeCommitBatch):
            for txn_dict in message.txns:
                self._on_edge_commit(EdgeCommit(txn_dict), sender)
        elif isinstance(message, RemoteTxnRequest):
            self._on_remote_txn(message, sender)
        elif isinstance(message, Replicate):
            self._on_replicate(message, sender)
        elif isinstance(message, ReplicateBatch):
            self._on_replicate_batch(message, sender)
        elif isinstance(message, ReplicatePartialBatch):
            self._on_replicate_partial(message, sender)
        elif isinstance(message, InterestAdvert):
            self._on_interest_advert(message, sender)
        elif isinstance(message, ShardBackfill):
            self._on_shard_backfill(message, sender)
        elif isinstance(message, ReplicateBatchAck):
            self._on_replicate_batch_ack(message, sender)
        elif isinstance(message, StabilityAck):
            self._on_stability_ack(message, sender)
        elif isinstance(message, DCSyncPing):
            self._on_sync_ping(message, sender)
        elif isinstance(message, ShardReadReply):
            self._on_shard_read_reply(message, sender)
        elif isinstance(message, ShardVote):
            self._on_shard_vote(message, sender)
        else:
            raise TypeError(f"DC {self.node_id}: unexpected message"
                            f" {message!r}")

    # ------------------------------------------------------------------
    # sessions and interest sets
    # ------------------------------------------------------------------
    def _on_session_open(self, msg: SessionOpen, sender: str) -> None:
        # Causal-compatibility check (section 3.8): the edge state must be
        # included in ours, otherwise its transactions cannot be committed
        # here and the session is refused until the gap closes.
        edge_vector = VectorClock(msg.state_vector)
        deps = [Dot.from_dict(d) for d in msg.local_deps]
        compatible = edge_vector.leq(self.state_vector) and all(
            self.dots.seen(d) or d.origin == msg.edge_id for d in deps)
        if not compatible:
            self.send(sender, SessionAck(self.node_id, (), {},
                                         accepted=False,
                                         reason="causally-incompatible"))
            self.stats["rejected"] += 1
            return
        session = _EdgeSession(msg.edge_id)
        for key_dict, type_name in msg.interest:
            session.interest[ObjectKey.from_dict(key_dict)] = type_name
        previous = self.sessions.get(msg.edge_id)
        if previous is not None:
            self._unindex_interest(previous)
        self.sessions[msg.edge_id] = session
        for key in session.interest:
            self._sessions_by_key.setdefault(key, set()).add(msg.edge_id)
        self._shard_refs_add(session.interest)

        keys = list(session.interest.items())
        if not keys:
            seed_vector = self.stable_vector.merge(edge_vector)
            self.send(sender, SessionAck(self.node_id, (),
                                         seed_vector.to_dict()))
            return
        local_deps = msg.local_deps

        def fire() -> None:
            # Seed no older than what the edge already observed: after a
            # migration the edge may be ahead of our *stable* vector
            # (though within our state vector, as checked above).  The
            # cut is taken at fire time so a seed deferred on shard
            # backfill covers the freshly backfilled entries too.
            seed_vector = self.stable_vector.merge(edge_vector)

            def done(states: List[dict]) -> None:
                self.send(sender, SessionAck(self.node_id, tuple(states),
                                             seed_vector.to_dict()))

            self._gather_reads(keys, seed_vector, local_deps, done)

        self._require_shards(self._keys_mask(k for k, _t in keys), fire)

    def close_session(self, edge_id: str) -> None:
        session = self.sessions.pop(edge_id, None)
        if session is not None:
            self._unindex_interest(session)

    def _unindex_interest(self, session: _EdgeSession) -> None:
        for key in session.interest:
            ids = self._sessions_by_key.get(key)
            if ids is not None:
                ids.discard(session.edge_id)
                if not ids:
                    del self._sessions_by_key[key]
        self._shard_refs_drop(session.interest)

    # -- session-driven shard interest (partial mode) -------------------
    def _keys_mask(self, keys: Any) -> int:
        if not self._partial:
            return 0
        shard_of = self.shard_map.shard_of
        mask = 0
        for key in keys:
            mask |= 1 << shard_of(key)
        return mask

    def _shard_refs_add(self, keys: Any) -> None:
        if not self._partial:
            return
        refs = self._shard_refs
        for key in keys:
            shard = self.shard_map.shard_of(key)
            refs[shard] = refs.get(shard, 0) + 1

    def _shard_refs_drop(self, keys: Any) -> None:
        if not self._partial:
            return
        refs = self._shard_refs
        released = set()
        for key in keys:
            shard = self.shard_map.shard_of(key)
            left = refs.get(shard, 0) - 1
            if left <= 0:
                refs.pop(shard, None)
                released.add(shard)
            else:
                refs[shard] = left
        for shard in sorted(released):
            self._maybe_unsubscribe(shard)

    def _require_shards(self, needed_mask: int,
                        fire: Callable[[], None]) -> None:
        """Run ``fire`` once every shard in ``needed_mask`` is caught up.

        Outside partial mode (or when all shards are already interested
        and backfilled) this fires synchronously.  Otherwise the missing
        shards are subscribed and the job waits for their backfill, so
        reads never see a journal with pruned holes.
        """
        if not self._partial:
            fire()
            return
        missing = needed_mask & ~self._interest_mask
        if missing:
            self._subscribe_shards(missing)
        if needed_mask & self._pending_backfill_mask():
            self._deferred_gathers.append((needed_mask, fire))
        else:
            fire()

    def _pending_backfill_mask(self) -> int:
        mask = 0
        for shard in self._pending_backfill:
            mask |= 1 << shard
        return mask

    def _gather_needed_mask(self) -> int:
        mask = 0
        for needed_mask, _fire in self._deferred_gathers:
            mask |= needed_mask
        return mask

    def _run_ready_gathers(self) -> None:
        if not self._deferred_gathers:
            return
        pending = self._pending_backfill_mask()
        still_blocked = []
        ready = []
        fired_mask = 0
        for needed_mask, fire in self._deferred_gathers:
            if needed_mask & pending:
                still_blocked.append((needed_mask, fire))
            else:
                ready.append(fire)
                fired_mask |= needed_mask
        self._deferred_gathers = still_blocked
        for fire in ready:
            fire()
        # Shards kept subscribed only for these reads can be let go now
        # that the reads have run against fully backfilled state.
        for shard in shards_of_mask(fired_mask):
            self._maybe_unsubscribe(shard)

    def _on_interest_change(self, msg: InterestChange, sender: str) -> None:
        session = self.sessions.get(msg.edge_id)
        if session is None:
            return
        dropped = []
        for key_dict in msg.remove:
            key = ObjectKey.from_dict(key_dict)
            if session.interest.pop(key, None) is not None:
                dropped.append(key)
                ids = self._sessions_by_key.get(key)
                if ids is not None:
                    ids.discard(msg.edge_id)
                    if not ids:
                        del self._sessions_by_key[key]
        self._shard_refs_drop(dropped)
        added = [(ObjectKey.from_dict(k), t) for k, t in msg.add]
        for key, type_name in added:
            session.interest[key] = type_name
            self._sessions_by_key.setdefault(key, set()).add(msg.edge_id)
        self._shard_refs_add(k for k, _t in added)
        if added:
            edge_vector = VectorClock(msg.state_vector)

            def fire() -> None:
                seed_vector = self.stable_vector.merge(edge_vector)

                def done(states: List[dict]) -> None:
                    self.send(sender, SessionAck(
                        self.node_id, tuple(states),
                        seed_vector.to_dict()))
                self._gather_reads(added, seed_vector, (), done)

            self._require_shards(self._keys_mask(k for k, _t in added),
                                 fire)

    def _on_object_request(self, msg: ObjectRequest, sender: str) -> None:
        key = ObjectKey.from_dict(msg.key)
        client_vector = VectorClock(msg.state_vector)

        def fire() -> None:
            seed_vector = self.stable_vector.merge(client_vector)

            def done(states: List[dict]) -> None:
                self.send(sender, ObjectResponse(
                    dict(states[0]), seed_vector.to_dict()))

            self._gather_reads([(key, msg.type_name)], seed_vector, (),
                               done)

        self._require_shards(self._keys_mask([key]), fire)

    # ------------------------------------------------------------------
    # shard read gathering
    # ------------------------------------------------------------------
    def _gather_reads(self, keys: List[Tuple[ObjectKey, str]],
                      vector: VectorClock, extra_dots: Tuple[dict, ...],
                      done: Callable[[List[dict]], None]) -> None:
        """Fetch object states (at ``vector``) from their owning shards."""
        request_ids: List[int] = []
        for key, type_name in keys:
            request_id = self._next_request
            self._next_request += 1
            request_ids.append(request_id)
            shard = self.ring.lookup(key)
            self.send(shard, ShardRead(request_id, key.to_dict(),
                                       type_name, vector.to_dict(),
                                       tuple(extra_dots)))
        waiting = set(request_ids)
        results: Dict[int, dict] = {}
        for request_id in request_ids:
            self._read_gathers[request_id] = (waiting, results, done,
                                              request_ids)

    def _on_shard_read_reply(self, msg: ShardReadReply, sender: str) -> None:
        gather = self._read_gathers.pop(msg.request_id, None)
        if gather is None:
            return
        waiting, results, done, order = gather
        waiting.discard(msg.request_id)
        results[msg.request_id] = msg.object_state
        if not waiting:
            done([results[r] for r in order])

    # ------------------------------------------------------------------
    # edge transaction commitment (section 3.7)
    # ------------------------------------------------------------------
    def _on_edge_commit(self, msg: EdgeCommit, sender: str) -> None:
        txn = Transaction.from_dict(msg.txn)
        self.stats["edge_commits"] += 1
        if self.dots.seen(txn.dot):
            # Duplicate (e.g. resent after migration, section 3.8): reply
            # with the already assigned equivalent commit stamp.
            known = self._txn_by_dot.get(txn.dot)
            if known is not None:
                self.send(sender, CommitAck(txn.dot.to_dict(),
                                            dict(known.commit.entries)))
            return
        if not txn.snapshot.satisfied_by(self.state_vector, self.dots):
            # The edge depends on transactions we have not yet received
            # (possible after migration); it must retry later.
            self.send(sender, CommitReject(txn.dot.to_dict(),
                                           "missing-dependencies"))
            self.stats["rejected"] += 1
            return
        self._commit_local(txn)
        self.send(sender, CommitAck(txn.dot.to_dict(),
                                    dict(txn.commit.entries)))

    def _commit_local(self, txn: Transaction,
                      notify_shards: bool = True) -> None:
        """Sequence a transaction into this DC's commit stream."""
        self._sequencer += 1
        ts = self._sequencer
        txn.commit.add_entry(self.node_id, ts)
        self._stream_dots.setdefault(self.node_id, {})[ts] = txn.dot
        if self._partial:
            mask = self.shard_map.mask_of_keys(txn.keys)
            self._stream_masks[ts] = mask
            self._entry_meta[txn.dot] = (mask, self.node_id)
        self.lamport.observe(txn.dot.counter)
        self.dots.observe(txn.dot)
        self._txn_by_dot[txn.dot] = txn
        self.state_vector = self.state_vector.advance(self.node_id, ts)
        self.stats["committed"] += 1
        if self.obs.enabled:
            self.obs.record(DC_COMMIT, txn.dot, self.node_id, self.now,
                            ts=ts)
        if notify_shards:
            # Already committed elsewhere (edge txn); store, no 2PC.
            for shard, _keys in self.ring.partition(txn.keys).items():
                self.send(shard, ShardApply(txn.to_dict()))
        # K-stability bookkeeping and geo-replication.  Batched mode
        # treats the commit stream itself as the send buffer: commits in
        # the same flush window ship together as ReplicateBatch frames.
        self.kstab.record(txn.dot, {self.node_id})
        if self._batched:
            self._schedule_repl_flush()
        else:
            self._replicate_unbatched(txn)
        if self.k_target <= 1 or (self._partial
                                  and self.required_k(txn.dot) <= 1):
            # With K > 1 a fresh local commit has a single holder, so it
            # cannot move the stable cut (nor unblock releases waiting on
            # our stream: those need this very dot stable first).  In
            # partial mode a singly-interested entry is stable at birth
            # even when the global K target is higher.
            self._advance_stability()

    def _replicate_unbatched(self, txn: Transaction) -> None:
        """Legacy pre-batching wire format: one frame per txn per peer."""
        payload = txn.to_dict()
        holders = frozenset({self.node_id})
        for dc in self.peer_dcs:
            self.send(dc, Replicate(payload, holders),
                      size_bytes=txn.byte_size())
            if self.obs.enabled:
                self.obs.record(REPLICATION, txn.dot, self.node_id,
                                self.now, phase="ship", peer=dc)

    # ------------------------------------------------------------------
    # remote (in-DC) transactions: baseline clients & migration (3.6/3.9)
    # ------------------------------------------------------------------
    def _on_remote_txn(self, msg: RemoteTxnRequest, sender: str) -> None:
        self.stats["remote_txns"] += 1
        if msg.snapshot is not None:
            # Migration primes the snapshot with the client's own state
            # (section 3.9); we raise it to at least our stable vector —
            # still a superset of the client's dependencies, and it keeps
            # shard reads above the compaction frontier.
            client_vector = VectorClock(msg.snapshot)
            snapshot = Snapshot(client_vector.merge(self.stable_vector),
                                [Dot.from_dict(d) for d in msg.local_deps])
            if not snapshot.satisfied_by(self.state_vector, self.dots):
                self.send(sender, RemoteTxnReply(
                    msg.request_id, (), False,
                    reason="missing-dependencies"))
                self.stats["rejected"] += 1
                return
        else:
            snapshot = Snapshot(self.state_vector)
        pending = _PendingRemoteTxn(msg, sender, snapshot)
        keys: List[Tuple[ObjectKey, str]] = []
        seen: Set[ObjectKey] = set()
        for key_dict, type_name in msg.reads:
            key = ObjectKey.from_dict(key_dict)
            if key not in seen:
                keys.append((key, type_name))
                seen.add(key)
        for key_dict, type_name, _method, _args in msg.updates:
            key = ObjectKey.from_dict(key_dict)
            if key not in seen:
                keys.append((key, type_name))
                seen.add(key)
        if not keys:
            self.send(sender, RemoteTxnReply(msg.request_id, (), True))
            return

        def done(states: List[dict]) -> None:
            for (key, _t), state in zip(keys, states):
                pending.states[key] = state_from_dict(state["base"])
            self._execute_remote_txn(pending)

        def fire() -> None:
            self._gather_reads(keys, snapshot.vector,
                               tuple(msg.local_deps), done)

        self._require_shards(self._keys_mask(k for k, _t in keys), fire)

    def _execute_remote_txn(self, pending: _PendingRemoteTxn) -> None:
        msg = pending.request
        # Reads are taken from the materialised snapshot states.
        values = tuple(pending.states[ObjectKey.from_dict(k)].value()
                       for k, _t in msg.reads)
        if not msg.updates:
            self.send(pending.client,
                      RemoteTxnReply(msg.request_id, values, True))
            return
        # Prepare the updates against the snapshot (reading own writes).
        writes: List[WriteOp] = []
        for key_dict, type_name, method, args in msg.updates:
            key = ObjectKey.from_dict(key_dict)
            state = pending.states[key]
            op = state.prepare(method, *args)
            writes.append(WriteOp(key, op))
        # Idempotent retries: a repeated (client, request) pair re-uses the
        # dot assigned the first time and just reports its commit stamp.
        request_key = (msg.client_id, msg.request_id)
        known_dot = self._remote_request_dots.get(request_key)
        if known_dot is not None and self.dots.seen(known_dot):
            known = self._txn_by_dot.get(known_dot)
            entries = dict(known.commit.entries) if known else {}
            self.send(pending.client, RemoteTxnReply(
                msg.request_id, values, True, entries))
            return
        if msg.dot is not None:
            dot = Dot.from_dict(msg.dot)
        elif known_dot is not None:
            # A duplicate that raced the first copy's commit: re-use the
            # dot assigned the first time, so both copies collapse onto
            # one transaction (journal appends dedupe by dot).
            dot = known_dot
        else:
            # Server-assigned Lamport dot: orders after everything this DC
            # has applied, in a DC-scoped origin namespace.
            dot = Dot(self.lamport.tick(), f"{self.node_id}/srv")
        self._remote_request_dots[request_key] = dot
        txn = Transaction(dot=dot, origin=msg.client_id,
                          snapshot=pending.snapshot, commit=CommitStamp(),
                          writes=writes, issuer=msg.issuer)
        if self.dots.seen(dot):
            known = self._txn_by_dot.get(dot)
            entries = dict(known.commit.entries) if known else {}
            self.send(pending.client, RemoteTxnReply(
                msg.request_id, values, True, entries))
            return
        # Apply each prepared op to the snapshot buffer so that several
        # updates to one object within the transaction compose.
        for index, write in enumerate(txn.tagged_writes()):
            pending.states[write.key].apply(write.op)
        # Two-phase commit across the touched shards (ClockSI style).
        shards = sorted(self.ring.partition(txn.keys))
        txid = self._next_txid
        self._next_txid += 1

        def on_done(ok: bool) -> None:
            if ok:
                self._commit_local(txn, notify_shards=False)
                for shard in shards:
                    self.send(shard, ShardCommit(txid, txn.to_dict()))
                self.send(pending.client, RemoteTxnReply(
                    msg.request_id, values, True,
                    dict(txn.commit.entries)))
            else:  # pragma: no cover - shards never refuse in simulation
                self.send(pending.client, RemoteTxnReply(
                    msg.request_id, values, False, reason="aborted"))

        self._pending_2pc[txid] = _Pending2PC(txn, shards, on_done)
        for shard in shards:
            self.send(shard, ShardPrepare(txid, txn.to_dict()))

    def _on_shard_vote(self, msg: ShardVote, sender: str) -> None:
        pending = self._pending_2pc.get(msg.txid)
        if pending is None:
            return
        if not msg.ok:  # pragma: no cover - shards never refuse here
            del self._pending_2pc[msg.txid]
            pending.on_done(False)
            return
        pending.votes.add(sender)
        if pending.votes >= set(pending.shards):
            del self._pending_2pc[msg.txid]
            pending.on_done(True)

    # ------------------------------------------------------------------
    # geo-replication (sections 3.4, 3.6) and K-stability (3.8)
    # ------------------------------------------------------------------
    def _on_replicate(self, msg: Replicate, sender: str) -> None:
        """Legacy per-transaction replication (and hand-injected frames)."""
        txn = Transaction.from_dict(msg.txn)
        if self.dots.seen(txn.dot):
            self.stats["repl_dup_in"] += 1
        self.kstab.record(txn.dot, set(msg.holders) | {self.node_id})
        queue = self._repl_queues.setdefault(sender, _ReplQueue())
        queue.insert(txn.commit.entries.get(sender), txn)
        self._process_repl_queues(moved=sender)
        if self._batched:
            # Coalesced stability: a cumulative vector ack replaces the
            # per-transaction gossip broadcast.
            self._send_batch_ack(sender)
        else:
            self._ack_unbatched(txn)
        self._advance_stability()

    def _ack_unbatched(self, txn: Transaction) -> None:
        """Legacy stability gossip: per-txn broadcast to every peer DC."""
        holders = frozenset(self.kstab.holders(txn.dot))
        ack = StabilityAck(txn.dot.to_dict(), holders)
        for dc in self.peer_dcs:
            self.send(dc, ack)

    # -- batched log shipping (send side) -------------------------------
    def _link(self, peer: str) -> ReplLink:
        link = self._repl_links.get(peer)
        if link is None:
            link = self._repl_links[peer] = ReplLink(peer)
        return link

    def _schedule_repl_flush(self) -> None:
        """Arm the Nagle-style flush timer once per window."""
        if self._repl_flush_scheduled or not self.peer_dcs:
            return
        self._repl_flush_scheduled = True
        self.set_timer(self.repl_flush_ms, self._flush_repl_links)

    def _flush_repl_links(self) -> None:
        self._repl_flush_scheduled = False
        for dc in self.peer_dcs:
            self._flush_link(self._link(dc))

    def _flush_link(self, link: ReplLink,
                    limit: Optional[int] = None) -> None:
        """Ship the unsent suffix of our stream as contiguous frames.

        Entries are chain-encoded: each snapshot vector is a delta
        against the *previous* stream entry's vector, and the frame
        carries the vector just before its first entry as the base, so
        decoding is self-contained even across lost acks.  Because the
        chain base does not depend on the receiving link, every entry
        is serialised exactly once and shared by all sibling links.
        """
        if self._partial:
            self._flush_link_partial(link, limit)
            return
        if not self._stream_dots.get(self.node_id):
            return
        top = self._sequencer
        if limit is not None:
            top = min(top, link.sent_ts + limit)
        sender_vector = self.state_vector.to_dict()
        while link.sent_ts < top:
            lo = link.sent_ts + 1
            hi = min(top, link.sent_ts + self.repl_batch_max)
            base = self._chain_base(lo)
            entries = []
            size = (HEADER_BYTES + len(self.node_id) + 8
                    + 8 * len(base) + 8 * len(sender_vector))
            for ts in range(lo, hi + 1):
                encoded, entry_size = self._encode_entry(ts)
                entries.append(encoded)
                size += entry_size
            frame = ReplicateBatch(self.node_id, lo, base.to_dict(),
                                   tuple(entries), sender_vector)
            self.send(link.peer, frame, size_bytes=size)
            if self.obs.enabled:
                stream = self._stream_dots[self.node_id]
                for ts in range(lo, hi + 1):
                    self.obs.record(REPLICATION, stream[ts],
                                    self.node_id, self.now,
                                    phase="ship", peer=link.peer, ts=ts)
            link.sent_ts = hi
            link.batches_sent += 1
            link.txns_sent += len(entries)
            link.bytes_sent += size
            self.stats["repl_batches_out"] += 1

    def _flush_link_partial(self, link: ReplLink,
                            limit: Optional[int] = None) -> None:
        """Interest-pruned flush: full entries or skip runs per position.

        Walks the same contiguous stream window as the batched flush,
        but entries whose write-shard mask misses the peer's interest
        are elided into mask-homogeneous ``(count, mask)`` skip runs.
        Metadata-only entries (mask 0) always ship — they carry causal
        structure every replica needs.  A window with no skips on an
        unbroken chain degenerates to a plain :class:`ReplicateBatch`,
        byte-identical to the batched pipeline, which is what makes the
        all-interested configuration an equivalence baseline.
        """
        if not self._stream_dots.get(self.node_id):
            return
        top = self._sequencer
        if limit is not None:
            top = min(top, link.sent_ts + limit)
        sender_vector = self.state_vector.to_dict()
        peer_mask = self._peer_interest.get(link.peer, 0)
        masks = self._stream_masks
        while link.sent_ts < top:
            lo = link.sent_ts + 1
            hi = min(top, link.sent_ts + self.repl_batch_max)
            base = self._link_chain_base(link)
            elements: List[Any] = []
            full_ts: List[int] = []
            pruned = 0
            pruned_bytes = 0
            size = (HEADER_BYTES + len(self.node_id) + 8
                    + 8 * len(base) + 8 * len(sender_vector))
            chain_ts = link.chain_ts
            run: Optional[List[int]] = None  # mutable [count, mask]
            for ts in range(lo, hi + 1):
                mask = masks.get(ts, 0)
                if mask == 0 or mask & peer_mask:
                    encoded, entry_size = self._encode_entry_partial(
                        chain_ts, ts)
                    elements.append(encoded)
                    full_ts.append(ts)
                    size += entry_size
                    chain_ts = ts
                    run = None
                else:
                    if run is not None and run[1] == mask:
                        run[0] += 1
                    else:
                        run = [1, mask]
                        elements.append(run)
                        size += SKIP_MARKER_BYTES
                    pruned += 1
                    # What the entry would have cost on the canonical
                    # chain — the honest measure of bytes saved.
                    pruned_bytes += self._encode_entry(ts)[1]
            if pruned == 0 and link.chain_ts == lo - 1:
                # Nothing elided, chain unbroken: the frame is exactly
                # what the batched pipeline would have shipped.
                frame: Any = ReplicateBatch(
                    self.node_id, lo, base.to_dict(),
                    tuple(elements), sender_vector)
            else:
                frame = ReplicatePartialBatch(
                    self.node_id, lo, base.to_dict(),
                    tuple(tuple(e) if isinstance(e, list) else e
                          for e in elements),
                    sender_vector)
            self.send(link.peer, frame, size_bytes=size)
            if self.obs.enabled:
                stream = self._stream_dots[self.node_id]
                for ts in full_ts:
                    self.obs.record(REPLICATION, stream[ts],
                                    self.node_id, self.now,
                                    phase="ship", peer=link.peer, ts=ts,
                                    shards=masks.get(ts, 0))
            link.sent_ts = hi
            link.chain_ts = chain_ts
            link.batches_sent += 1
            link.txns_sent += len(full_ts)
            link.bytes_sent += size
            link.txns_pruned += pruned
            link.pruned_bytes += pruned_bytes
            self.stats["repl_batches_out"] += 1
            self.stats["repl_pruned_txns"] += pruned
            self.stats["repl_pruned_bytes"] += pruned_bytes

    def _link_chain_base(self, link: ReplLink) -> VectorClock:
        """Vector anchoring the link's delta chain (zero before entry 1)."""
        if link.chain_ts <= 0:
            return VectorClock.zero()
        prev = self._txn_by_dot[
            self._stream_dots[self.node_id][link.chain_ts]]
        return prev.snapshot.vector

    def _encode_entry_partial(self, prev_ts: int,
                              ts: int) -> Tuple[dict, int]:
        """Chain-encode entry ``ts`` against the last entry *shipped*.

        Pruning makes the previous full entry link-dependent; the
        unbroken case delegates to the canonical per-entry cache so
        all-interested links share the batched pipeline's encodings
        byte for byte, and broken-chain encodings are memoised by
        ``(prev_ts, ts)`` so links with equal interest still share.
        """
        if prev_ts == ts - 1:
            return self._encode_entry(ts)
        key = (prev_ts, ts)
        cached = self._partial_entry_cache.get(key)
        if cached is None:
            stream = self._stream_dots[self.node_id]
            txn = self._txn_by_dot[stream[ts]]
            if prev_ts <= 0:
                base = VectorClock.zero()
            else:
                base = self._txn_by_dot[stream[prev_ts]].snapshot.vector
            cached = self._partial_entry_cache[key] = encode_stream_entry(
                txn, self.node_id, ts, base)
        return cached

    def _chain_base(self, ts: int) -> VectorClock:
        """Snapshot vector of own stream entry ``ts - 1`` (zero at 1)."""
        if ts <= 1:
            return VectorClock.zero()
        prev = self._txn_by_dot[self._stream_dots[self.node_id][ts - 1]]
        return prev.snapshot.vector

    def _encode_entry(self, ts: int) -> Tuple[dict, int]:
        """Chain-encode own stream entry ``ts``, memoised per entry.

        Stream entries are immutable once sequenced, except that a
        migration duplicate may graft extra equivalent commit entries
        later — ``_adopt_commit_entries`` invalidates the cache then.
        """
        cached = self._entry_cache.get(ts)
        if cached is None:
            txn = self._txn_by_dot[self._stream_dots[self.node_id][ts]]
            cached = self._entry_cache[ts] = encode_stream_entry(
                txn, self.node_id, ts, self._chain_base(ts))
        return cached

    # -- batched log shipping (receive side) ----------------------------
    def _on_replicate_batch(self, msg: ReplicateBatch, sender: str) -> None:
        self.stats["repl_batches_in"] += 1
        # The sender applied everything its vector covers: that is the
        # coalesced stability gossip, and it must be noted *before* the
        # drain so apply-time holder counts see it.
        self._note_peer_applied(sender, VectorClock(msg.sender_vector))
        base = VectorClock(msg.base_vector)
        origin_dc = msg.origin_dc
        queue = self._repl_queues.setdefault(origin_dc, _ReplQueue())
        applied = False
        for i, entry in enumerate(msg.entries):
            ts = msg.start_ts + i
            txn = decode_stream_entry(entry, origin_dc, ts, base)
            if self.dots.seen(txn.dot):
                # Stale resend or migration duplicate: account it as a
                # duplicate, never as fresh replication traffic.
                self.stats["repl_dup_in"] += 1
            # The chain continues from the entry just decoded.
            base = txn.snapshot.vector
            # Fast path: with nothing queued ahead of it, an in-order
            # head that extends our frontier with a satisfied snapshot
            # applies without a queue round-trip.  Anything else (hole,
            # stale resend, migration duplicate) takes the queue and the
            # generic drain sorts it out.
            if (not len(queue)
                    and ts == self.state_vector[origin_dc] + 1
                    and not self.dots.seen(txn.dot)
                    and self._snapshot_ready(origin_dc, txn)):
                self._apply_remote_txn(origin_dc, ts, txn)
                applied = True
            else:
                queue.insert(ts, txn)
        if applied or len(queue):
            # Fast-path applies moved our frontier, so other streams may
            # have unblocked: rescan them all.  _process_repl_queues ends
            # with shard-apply flush and an _advance_stability pass.
            self._process_repl_queues(moved=None if applied else origin_dc)
        self._send_batch_ack(sender)

    def _on_replicate_partial(self, msg: ReplicatePartialBatch,
                              sender: str) -> None:
        """Receive an interest-pruned frame: full entries and skip runs.

        The flat stream cursor advances over both element kinds, so the
        state vector keeps meaning "every position up to here is
        *resolved*" — applied or deliberately pruned.  Skip runs whose
        mask intersects our interest reveal a stale sender view; they
        still advance the cursor (the stream must not stall) and the
        missing shards are healed through the backfill protocol.
        """
        self.stats["repl_batches_in"] += 1
        self._note_peer_applied(sender, VectorClock(msg.sender_vector))
        base = VectorClock(msg.base_vector)
        origin_dc = msg.origin_dc
        queue = self._repl_queues.setdefault(origin_dc, _ReplQueue())
        applied = False
        ts = msg.start_ts
        for element in msg.entries:
            if isinstance(element, dict):
                txn = decode_stream_entry(element, origin_dc, ts, base)
                if self.dots.seen(txn.dot):
                    self.stats["repl_dup_in"] += 1
                base = txn.snapshot.vector
                if (not len(queue)
                        and ts == self.state_vector[origin_dc] + 1
                        and not self.dots.seen(txn.dot)
                        and self._snapshot_ready(origin_dc, txn)):
                    self._apply_remote_txn(origin_dc, ts, txn)
                    applied = True
                else:
                    queue.insert(ts, txn)
                ts += 1
            else:
                count, mask = element
                run = SkipRun(ts, count, mask)
                if (not len(queue)
                        and ts == self.state_vector[origin_dc] + 1):
                    self._apply_skip_run(origin_dc, run)
                    applied = True
                else:
                    queue.insert_run(run)
                ts += count
        if applied or len(queue):
            self._process_repl_queues(
                moved=None if applied else origin_dc)
        self._send_batch_ack(sender)

    def _apply_skip_run(self, origin_dc: str, run: SkipRun) -> None:
        """Advance a stream frontier over positions the sender pruned.

        Safe because this DC never serves or pushes entries it does not
        hold: the flat frontier only asserts the stream is *resolved* up
        to here, and per-shard reads gate on interest plus backfill
        completion.  A mask that intersects our interest means the
        sender pruned on a stale view — request a backfill of those
        shards from the stream origin instead of losing data.
        """
        frontier = self.state_vector[origin_dc]
        start = max(run.start_ts, frontier + 1)
        if start > run.end_ts:
            return  # fully stale resend
        wrong = run.mask & self._interest_mask
        if wrong:
            shards = [s for s in shards_of_mask(wrong)
                      if origin_dc not in self._pending_backfill.get(
                          s, set())]
            for shard in shards:
                self._pending_backfill.setdefault(shard, set()).add(
                    origin_dc)
            if shards:
                self.send(origin_dc, InterestAdvert(
                    self._interest_mask, self._interest_seq,
                    tuple(shards)))
        self.state_vector = self.state_vector.advance(
            origin_dc, run.end_ts)
        # Materialise the stream dict even when every entry is pruned:
        # the stability sweep iterates it to hop the stable frontier
        # over skip-covered positions.
        self._stream_dots.setdefault(origin_dc, {})
        recorded = SkipRun(start, run.end_ts - start + 1, run.mask)
        runs = self._skip_runs.setdefault(origin_dc, [])
        starts = self._skip_starts.setdefault(origin_dc, [])
        index = bisect.bisect_right(starts, recorded.start_ts)
        runs.insert(index, recorded)
        starts.insert(index, recorded.start_ts)

    def _skip_covered(self, origin_dc: str, ts: int) -> Optional[SkipRun]:
        """The applied skip run covering ``(origin, ts)``, if any."""
        starts = self._skip_starts.get(origin_dc)
        if not starts:
            return None
        index = bisect.bisect_right(starts, ts) - 1
        if index < 0:
            return None
        run = self._skip_runs[origin_dc][index]
        return run if run.covers(ts) else None

    def _snapshot_ready(self, origin_dc: str, txn: Transaction) -> bool:
        """Snapshot check, exempting deps pruned from ``origin_dc``.

        Local deps of an edge transaction are sequenced earlier in the
        *same* origin stream (session pipelines are FIFO, and migration
        resubmits pending deps before dependents), so when the head sits
        at ``frontier + 1`` every dep position below is resolved.  An
        unseen dep on a stream that recorded skip runs was therefore
        deliberately pruned — treating it as satisfied is what keeps a
        partially-replicated stream from stalling on data it opted out
        of.  Streams without skip runs (the all-interested baseline)
        keep the strict check: there an unseen dep is merely late.
        """
        if not self._partial:
            return txn.snapshot.satisfied_by(self.state_vector, self.dots)
        if not txn.snapshot.vector.leq(self.state_vector):
            return False
        pruning = self._skip_runs.get(origin_dc)
        for dep in txn.snapshot.local_deps:
            if self.dots.seen(dep):
                continue
            if pruning:
                continue
            return False
        return True

    # -- interest adverts and shard backfill (partial mode) -------------
    def _fold_peer_interest(self, peer: str, mask: int,
                            seq: int) -> bool:
        """Adopt a peer's advertised interest; False on a stale advert."""
        if seq < self._peer_interest_seq.get(peer, 0):
            return False
        changed = self._peer_interest.get(peer) != mask
        self._peer_interest[peer] = mask
        self._peer_interest_seq[peer] = seq
        return changed

    def _on_interest_advert(self, msg: InterestAdvert,
                            sender: str) -> None:
        self.stats["repl_adverts_in"] += 1
        if not self._partial:
            return
        changed = self._fold_peer_interest(sender, msg.shards_mask,
                                           msg.seq)
        for shard in msg.backfill:
            self._send_backfill(sender, shard)
        if changed:
            # A shrunk peer interest can lower required_k thresholds.
            self._advance_stability()

    def _send_backfill(self, peer: str, shard: int) -> None:
        """Answer a catch-up request from our own commit stream.

        FIFO links make subscribe + backfill gap-free: ``upto`` is our
        sequencer at response time, and every later entry ships as a
        live frame that the peer's (already folded) interest keeps
        un-pruned.  The holder credit is optimistic — the requester's
        retry-on-ping loop re-requests a lost backfill, so the credit
        converges with reality.
        """
        bit = 1 << shard
        stream = self._stream_dots.get(self.node_id, {})
        entries = []
        size = HEADER_BYTES + 12
        for ts in range(1, self._sequencer + 1):
            if self._stream_masks.get(ts, 0) & bit:
                txn = self._txn_by_dot[stream[ts]]
                entries.append((ts, txn.to_dict()))
                size += 8 + txn.byte_size()
        self.send(peer, ShardBackfill(shard, tuple(entries),
                                      self._sequencer),
                  size_bytes=size)
        self.stats["repl_backfills_out"] += 1
        credited = False
        for ts, _payload in entries:
            dot = stream[ts]
            if dot not in self._stable_dots:
                self.kstab.record(dot, (peer,))
                credited = True
        if credited:
            self._advance_stability()

    def _on_shard_backfill(self, msg: ShardBackfill,
                           sender: str) -> None:
        self.stats["repl_backfills_in"] += 1
        stream = self._stream_dots.setdefault(sender, {})
        applied = False
        for ts, payload in msg.entries:
            txn = Transaction.from_dict(payload)
            if self.dots.seen(txn.dot):
                self.stats["repl_dup_in"] += 1
                self._adopt_commit_entries(txn)
                if ts not in stream:
                    stream[ts] = txn.dot
                    if ts <= self.stable_vector[sender]:
                        self._stable_dots.add(txn.dot)
                continue
            self._apply_offstream_entry(sender, ts, txn)
            applied = True
        owers = self._pending_backfill.get(msg.shard)
        if owers is not None:
            owers.discard(sender)
            if not owers:
                del self._pending_backfill[msg.shard]
        if applied:
            self._flush_shard_applies()
            self._advance_stability()
        self._run_ready_gathers()

    def _apply_offstream_entry(self, origin_dc: str, ts: int,
                               txn: Transaction) -> None:
        """Store a full entry at a position the flat cursor already
        resolved (backfill, or a full resend racing a skip run).

        Everything ``_apply_remote_txn`` does except advancing the
        state vector — the position is covered, only the data was
        missing.
        """
        self.stats["replicated_in"] += 1
        if self.obs.enabled:
            self.obs.record(REPLICATION, txn.dot, self.node_id,
                            self.now, phase="apply", origin=origin_dc,
                            ts=ts, backfill=True,
                            shards=self.shard_map.mask_of_keys(txn.keys))
        self.lamport.observe(txn.dot.counter)
        self.dots.observe(txn.dot)
        self._txn_by_dot[txn.dot] = txn
        self._stream_dots.setdefault(origin_dc, {})[ts] = txn.dot
        if ts <= self.stable_vector[origin_dc]:
            # The stable frontier already hopped this position while it
            # was skip-covered: the backfilled dot is part of the stable
            # cut, and later entries naming it as a local dependency
            # must see it as released.
            self._stable_dots.add(txn.dot)
        self._entry_meta[txn.dot] = (
            self.shard_map.mask_of_keys(txn.keys), origin_dc)
        self.kstab.record(txn.dot,
                          self._known_holders(origin_dc, ts, txn.dot))
        payload = txn.to_dict()
        for shard in self.ring.partition(txn.keys):
            self._shard_apply_buf.setdefault(shard, []).append(payload)

    def _subscribe_shards(self, mask: int) -> None:
        """Grow our interest set; request backfill from every peer.

        Each peer answers from its *own* stream only — every origin is
        the authoritative holder of its own log, so the union of
        responses is a complete catch-up.
        """
        self._interest_mask |= mask
        self._interest_seq += 1
        shards = shards_of_mask(mask)
        if not self.peer_dcs:
            return
        for shard in shards:
            self._pending_backfill.setdefault(shard, set()).update(
                self.peer_dcs)
        advert = InterestAdvert(self._interest_mask,
                                self._interest_seq, shards)
        for peer in sorted(self.peer_dcs):
            self.send(peer, advert)

    def _maybe_unsubscribe(self, shard: int) -> None:
        """Retract interest in a shard no session references any more.

        Served (home) shards are permanent interest; already-held data
        is kept either way — unsubscribing only stops *future* frames
        from carrying the shard.
        """
        if not self._partial:
            return
        bit = 1 << shard
        if not self._interest_mask & bit:
            return
        if self.shard_map.served(self.node_id) & bit:
            return
        if self._shard_refs.get(shard):
            return
        if self._gather_needed_mask() & bit:
            # A deferred read still needs this shard's backfill: keep
            # the subscription until it fires.  Dropping now would run
            # the read against a store missing skip-pruned entries the
            # stable vector already covers — an inconsistent seed that
            # poisons the edge's per-key cut.
            return
        self._interest_mask &= ~bit
        self._interest_seq += 1
        self._pending_backfill.pop(shard, None)
        advert = InterestAdvert(self._interest_mask, self._interest_seq)
        for peer in sorted(self.peer_dcs):
            self.send(peer, advert)
        self._run_ready_gathers()

    def _retry_backfills(self, peer: str) -> None:
        """Re-request backfills a peer still owes (lost responses)."""
        owed = tuple(sorted(
            shard for shard, owers in self._pending_backfill.items()
            if peer in owers))
        if owed:
            self.send(peer, InterestAdvert(self._interest_mask,
                                           self._interest_seq, owed))

    def _send_batch_ack(self, peer: str) -> None:
        self.stats["repl_acks_out"] += 1
        ack = ReplicateBatchAck(self.state_vector.to_dict())
        self.send(peer, ack,
                  size_bytes=HEADER_BYTES
                  + vector_wire_size(self.state_vector))

    def _on_replicate_batch_ack(self, msg: ReplicateBatchAck,
                                sender: str) -> None:
        self._link(sender).acks_in += 1
        self.stats["repl_acks_in"] += 1
        if self._note_peer_applied(sender, VectorClock(msg.applied_vector)):
            self._advance_stability()

    # -- coalesced K-stability ------------------------------------------
    def _note_peer_applied(self, peer: str,
                           vector: VectorClock) -> bool:
        """Fold a peer's applied vector into holder knowledge.

        A peer holds every transaction its applied vector covers, so
        each newly covered (origin, ts) we know the dot of is recorded
        with the K-stability tracker.  Entries past our own applied
        frontier are picked up at apply time via ``_known_holders``.
        Returns True when the peer's known frontier advanced (holder
        counts may have changed), False on a stale vector.
        """
        known = self._peer_applied.get(peer, VectorClock.zero())
        if vector.leq(known):
            return False
        merged = known.merge(vector)
        self._peer_applied[peer] = merged
        for origin in merged:
            new = merged[origin]
            old = known[origin]
            if new <= old:
                continue
            stream = self._stream_dots.get(origin)
            if not stream:
                continue
            cap = (self._sequencer if origin == self.node_id
                   else self.state_vector[origin])
            for ts in range(old + 1, min(new, cap) + 1):
                dot = stream.get(ts)
                # Holder sets only gate stability; once a dot is inside
                # the stable cut, further holders are of no consequence.
                # In partial mode a covered position only proves the
                # peer *resolved* it — holder credit additionally needs
                # the peer's interest to intersect the entry's shards.
                if dot is not None and dot not in self._stable_dots:
                    if self._partial and not self._peer_holds(peer, dot):
                        continue
                    self.kstab.record(dot, (peer,))
        return True

    def _peer_holds(self, peer: str, dot: Dot) -> bool:
        """Would the peer have stored (not skip-covered) this entry?"""
        meta = self._entry_meta.get(dot)
        if meta is None:
            return True
        mask, origin = meta
        if mask == 0 or origin == peer:
            return True
        return bool(mask & self._peer_interest.get(peer, 0))

    def _known_holders(self, origin_dc: str, ts: int,
                       dot: Optional[Dot] = None) -> Set[str]:
        """Us plus every peer whose applied vector covers (origin, ts)."""
        holders = {self.node_id}
        for peer, vec in self._peer_applied.items():
            if vec[origin_dc] >= ts:
                if (self._partial and dot is not None
                        and not self._peer_holds(peer, dot)):
                    continue
                holders.add(peer)
        return holders

    def required_k(self, dot: Dot) -> int:
        """Interested-replica stability threshold for ``dot``.

        Partial mode counts only replicas whose interest intersects the
        entry's shard mask (metadata-only entries concern everyone),
        always including the stream origin, clamped below by
        ``k_floor`` so operators can demand extra durability copies
        even for singly-interested shards.  Other modes use the global
        ``k_target`` unchanged.
        """
        if not self._partial:
            return self.k_target
        meta = self._entry_meta.get(dot)
        if meta is None:
            return self.k_target
        mask, origin = meta
        n_dcs = 1 + len(self.peer_dcs)
        if mask == 0:
            interested = n_dcs
        else:
            interested = 0
            if mask & self._interest_mask or origin == self.node_id:
                interested += 1
            for peer in self.peer_dcs:
                if mask & self._peer_interest.get(peer, 0) \
                        or peer == origin:
                    interested += 1
        return max(min(self.k_target, interested),
                   min(self.k_floor, n_dcs))

    def _process_repl_queues(self, moved: Optional[str] = None) -> None:
        """Apply queued remote transactions whose dependencies are met.

        When ``moved`` names the only queue whose frontier could have
        changed (a frame just landed on it), drain it first; if it made
        no progress, nothing changed globally and the full rescan is
        skipped.  If it did progress, other queues may have unblocked
        (cross-stream snapshot dependencies), so loop until quiescent.
        """
        if moved is not None:
            queue = self._repl_queues.get(moved)
            if queue is None or not self._drain_queue(moved, queue):
                self._flush_shard_applies()
                self._advance_stability()
                return
        progress = True
        while progress:
            progress = False
            for origin_dc, queue in self._repl_queues.items():
                if self._drain_queue(origin_dc, queue):
                    progress = True
        self._flush_shard_applies()
        self._advance_stability()

    def _drain_queue(self, origin_dc: str, queue: _ReplQueue) -> bool:
        """Drain one stream's queue; returns True if anything applied.

        Each stream is applied *contiguously*: the vector component for
        ``origin_dc`` asserts "we applied its stream up to here", so a
        head past ``frontier + 1`` must wait for the gap below it to be
        filled (anti-entropy resends it, because our advertised frontier
        still points at the hole).  Skipping ahead would advertise
        transactions we never received and stall replication forever.
        """
        progress = False
        while len(queue):
            head = queue.head()
            if isinstance(head, SkipRun):
                frontier = self.state_vector[origin_dc]
                if head.end_ts <= frontier:
                    queue.popleft()  # fully stale resend
                    progress = True
                    continue
                if head.start_ts > frontier + 1:
                    break  # hole below the run: wait for the resend
                queue.popleft()
                self._apply_skip_run(origin_dc, head)
                progress = True
                continue
            txn = head
            ts = txn.commit.entries.get(origin_dc)
            if ts is None:  # pragma: no cover - malformed stream
                queue.popleft()
                continue
            frontier = self.state_vector[origin_dc]
            if ts <= frontier:
                if self._partial and not self.dots.seen(txn.dot):
                    # The position was skip-covered and the full entry
                    # arrived afterwards (our interest raced the
                    # sender's view): late-fill the data off-stream.
                    self._apply_offstream_entry(origin_dc, ts, txn)
                else:
                    # Stale resend of an entry we already cover.
                    self._adopt_commit_entries(txn)
                queue.popleft()
                progress = True
                continue
            if ts > frontier + 1:
                break  # hole below the head: wait for the resend
            if self.dots.seen(txn.dot):
                # Duplicate via another DC (migration); adopt the
                # extra equivalent commit entry (section 3.8).  The
                # head is exactly frontier + 1 here, so advancing the
                # single component is the merge.
                self._adopt_commit_entries(txn)
                self.state_vector = self.state_vector.advance(
                    origin_dc, ts)
                self._stream_dots.setdefault(
                    origin_dc, {})[ts] = txn.dot
                # The stream coordinate is new even if the dot is not:
                # peers whose vectors already cover it hold the txn.
                self.kstab.record(txn.dot,
                                  self._known_holders(origin_dc, ts))
                queue.popleft()
                progress = True
                continue
            if not self._snapshot_ready(origin_dc, txn):
                break  # blocked on a third DC's stream
            queue.popleft()
            self._apply_remote_txn(origin_dc, ts, txn)
            progress = True
        return progress

    def _adopt_commit_entries(self, txn: Transaction) -> None:
        """Merge equivalent commit stamps from a duplicate copy."""
        known = self._txn_by_dot.get(txn.dot)
        if known is None:
            return
        changed = False
        for dc, entry_ts in txn.commit.entries.items():
            if dc not in known.commit.entries:
                known.commit.add_entry(dc, entry_ts)
                changed = True
        if changed:
            # A grafted equivalent entry invalidates the cached wire
            # encoding of our own stream position for this txn.
            own_ts = known.commit.entries.get(self.node_id)
            if own_ts is not None:
                self._entry_cache.pop(own_ts, None)
                if self._partial_entry_cache:
                    self._partial_entry_cache = {
                        key: value for key, value
                        in self._partial_entry_cache.items()
                        if key[1] != own_ts}

    def _apply_remote_txn(self, origin_dc: str, ts: int,
                          txn: Transaction) -> None:
        # The *only* place a remote transaction enters this DC's state:
        # counting here makes ``replicated_in`` exact (one per unique
        # transaction), immune to anti-entropy resend inflation.
        self.stats["replicated_in"] += 1
        if self.obs.enabled:
            if self._partial:
                self.obs.record(REPLICATION, txn.dot, self.node_id,
                                self.now, phase="apply",
                                origin=origin_dc, ts=ts,
                                shards=self.shard_map.mask_of_keys(
                                    txn.keys))
            else:
                self.obs.record(REPLICATION, txn.dot, self.node_id,
                                self.now, phase="apply",
                                origin=origin_dc, ts=ts)
        self.lamport.observe(txn.dot.counter)
        self.dots.observe(txn.dot)
        self._txn_by_dot[txn.dot] = txn
        self._stream_dots.setdefault(origin_dc, {})[ts] = txn.dot
        if self._partial:
            self._entry_meta[txn.dot] = (
                self.shard_map.mask_of_keys(txn.keys), origin_dc)
        # Advance only the stream we received on: other equivalent commit
        # entries (section 3.8) belong to streams that ship separately, and
        # merging them here would claim transactions we have not applied.
        # Contiguity makes ts == frontier + 1, so a single-component
        # advance is the merge.
        self.state_vector = self.state_vector.advance(origin_dc, ts)
        # Every peer whose applied vector already covers this coordinate
        # holds the transaction — that knowledge arrived coalesced on
        # batch acks rather than per-txn gossip.
        self.kstab.record(txn.dot,
                          self._known_holders(origin_dc, ts, txn.dot))
        shards = self.ring.partition(txn.keys)
        if not shards:
            return  # metadata-only txn: nothing for the stores
        payload = txn.to_dict()
        if self._batched:
            for shard in shards:
                self._shard_apply_buf.setdefault(shard, []).append(payload)
        else:
            for shard in shards:
                self.send(shard, ShardApply(payload))

    def _flush_shard_applies(self) -> None:
        """Ship buffered remote applies, one frame per shard."""
        if not self._shard_apply_buf:
            return
        buffered, self._shard_apply_buf = self._shard_apply_buf, {}
        for shard, payloads in buffered.items():
            if len(payloads) == 1:
                only = payloads[0]
                self.send(shard, ShardApply(only))
            else:
                self.send(shard, ShardApplyBatch(tuple(payloads)))

    def _on_stability_ack(self, msg: StabilityAck, sender: str) -> None:
        dot = Dot.from_dict(msg.dot)
        self.kstab.record(dot, set(msg.holders))
        self._advance_stability()

    # -- anti-entropy: repair replication across partitions -----------------
    def _sync_peers(self) -> None:
        if not self.peer_dcs:
            return
        if self._partial:
            # Piggyback our interest on the ping so lost adverts heal
            # within one sync period.
            ping = DCSyncPing(self.state_vector.to_dict(),
                              self.stable_vector.to_dict(),
                              interest_mask=self._interest_mask,
                              interest_seq=self._interest_seq)
        else:
            ping = DCSyncPing(self.state_vector.to_dict(),
                              self.stable_vector.to_dict())
        for dc in self.peer_dcs:
            self.send(dc, ping)

    def _on_sync_ping(self, msg: DCSyncPing, sender: str) -> None:
        """Repair the peer's view of our stream and of stability.

        Batched mode piggybacks stability on the ping's state vector
        and rewinds the link's shipped frontier to the peer's advertised
        one, so lost frames are re-shipped as ordinary batches (capped
        at ``SYNC_BATCH`` entries per ping, like the legacy resend).

        A ping's advertised frontier is one RTT stale: frames shipped
        inside that window are still in flight, not lost.  Rewinding on
        every ping therefore resent the in-flight suffix each period —
        pure duplicate traffic that the receive queue's dedup set no
        longer filters once the entries have been applied and popped.
        The rewind now waits for evidence of loss: the peer advertising
        the *same* stalled frontier twice in a row.
        """
        if self._batched:
            self._note_peer_applied(sender, VectorClock(msg.state_vector))
            if self._partial:
                if msg.interest_mask is not None:
                    self._fold_peer_interest(sender, msg.interest_mask,
                                             msg.interest_seq)
                self._retry_backfills(sender)
            link = self._link(sender)
            peer_has = msg.state_vector.get(self.node_id, 0)
            if peer_has > link.sent_ts:
                # The peer holds entries we never shipped on this link
                # (received via a third DC after a migration): skip them.
                link.sent_ts = peer_has
                link.chain_ts = peer_has
            elif peer_has < link.sent_ts \
                    and peer_has <= link.last_advert:
                # Stalled across a full sync period: the in-flight
                # window has drained, so the gap is genuine loss.
                link.sent_ts = peer_has
                link.chain_ts = peer_has
                link.rewinds += 1
            link.last_advert = peer_has
            self._flush_link(link, limit=self.SYNC_BATCH)
            self._advance_stability()
            return
        self._resend_unbatched(msg, sender)
        self._reack_held(msg, sender)

    def _resend_unbatched(self, msg: DCSyncPing, sender: str) -> None:
        """Legacy resend: our stream's suffix, one frame per txn."""
        peer_has = msg.state_vector.get(self.node_id, 0)
        stream = self._stream_dots.get(self.node_id, {})
        resent = 0
        ts = peer_has + 1
        while ts <= self._sequencer and resent < self.SYNC_BATCH:
            dot = stream.get(ts)
            if dot is not None:
                txn = self._txn_by_dot.get(dot)
                if txn is not None:
                    holders = frozenset(self.kstab.holders(dot)
                                        | {self.node_id})
                    self.send(sender, Replicate(txn.to_dict(), holders),
                              size_bytes=txn.byte_size())
                    resent += 1
            ts += 1

    def _reack_held(self, msg: DCSyncPing, sender: str) -> None:
        """Stability anti-entropy: re-ack held dots the peer still
        tracks as unstable.

        StabilityAck gossip is fire-and-forget; if the ack carrying
        "we hold X" is lost, the peer's K-stability frontier for X
        stalls *forever* — both DCs store the transaction, so the
        transaction-resend path above never fires, and no stable push
        ever reaches the peer's edges.  The sender's stable vector on
        the ping tells us exactly which prefix still lacks acks.
        """
        peer_stable = msg.stable_vector or {}
        reacked = 0
        for origin_dc, stream in self._stream_dots.items():
            ts = peer_stable.get(origin_dc, 0) + 1
            top = self.state_vector[origin_dc]
            while ts <= top and reacked < self.SYNC_BATCH:
                dot = stream.get(ts)
                ts += 1
                if dot is None or not self.dots.seen(dot):
                    continue
                holders = frozenset(self.kstab.holders(dot)
                                    | {self.node_id})
                self.send(sender, StabilityAck(dot.to_dict(), holders))
                reacked += 1

    def _advance_stability(self) -> None:
        """Move per-stream stable frontiers; push newly stable updates.

        The stable vector must stay a *causally closed* cut: a transaction
        is released only when it is K-stable AND all its dependencies are
        already inside the cut (its snapshot vector is covered and its
        symbolic dependencies were released).  Without this, an edge could
        receive a transaction before its causal ancestors — exactly the
        incompatibility K-stability exists to prevent (section 3.8).
        """
        advanced = False
        # Work on a plain dict: releasing a long run would otherwise
        # rebuild an immutable clock per released transaction.
        stable = self.stable_vector.to_dict()
        progress = True
        while progress:
            progress = False
            for origin_dc, stream in self._stream_dots.items():
                frontier = stable.get(origin_dc, 0)
                while True:
                    dot = stream.get(frontier + 1)
                    if dot is None:
                        # Partial mode: a position covered by a skip
                        # run holds nothing to release — the stable
                        # frontier hops over it.
                        if (not self._partial
                                or frontier + 1
                                > self.state_vector[origin_dc]
                                or self._skip_covered(
                                    origin_dc, frontier + 1) is None):
                            break
                        frontier += 1
                        stable[origin_dc] = frontier
                        progress = True
                        advanced = True
                        continue
                    if self._partial:
                        if self.kstab.count(dot) < self.required_k(dot):
                            break
                    elif not self.kstab.is_stable(dot):
                        break
                    txn = self._txn_by_dot.get(dot)
                    if txn is None:  # pragma: no cover - defensive
                        break
                    if any(v > stable.get(k, 0) for k, v
                           in txn.snapshot.vector.items()):
                        break  # blocked on another stream's frontier
                    if not all(d in self._stable_dots
                               or (self._partial
                                   and not self.dots.seen(d))
                               for d in txn.snapshot.local_deps):
                        break
                    frontier += 1
                    stable[origin_dc] = frontier
                    self._stable_dots.add(dot)
                    if self.obs.enabled:
                        self.obs.record(K_STABLE, dot, self.node_id,
                                        self.now, origin=origin_dc,
                                        ts=frontier)
                    progress = True
                    advanced = True
        if advanced:
            self.stable_vector = VectorClock(stable)
            self._push_updates()

    # ------------------------------------------------------------------
    # pushing K-stable updates to edge sessions (sections 3.8, 4.2)
    # ------------------------------------------------------------------
    def _push_updates(self) -> None:
        """Send newly K-stable transactions to interested edge sessions."""
        if not self.sessions:
            # Nobody to push to: just move the cursor, skip collection.
            self._pushed_stable = self.stable_vector
            return
        new_txns: List[Transaction] = []
        for origin_dc, stream in self._stream_dots.items():
            start = self._pushed_stable[origin_dc]
            end = self.stable_vector[origin_dc]
            for ts in range(start + 1, end + 1):
                dot = stream.get(ts)
                if dot is None:
                    continue
                txn = self._txn_by_dot.get(dot)
                if txn is not None:
                    new_txns.append(txn)
        prev = self._pushed_stable.to_dict()
        self._pushed_stable = self.stable_vector
        if not new_txns and not self.sessions:
            return
        # Dot order linearly extends causality: safe delivery order.
        new_txns.sort(key=lambda t: t.dot.as_tuple())
        seen: Set[Dot] = set()
        unique = []
        for txn in new_txns:
            if txn.dot not in seen:
                seen.add(txn.dot)
                unique.append(txn)
        stable = self.stable_vector.to_dict()
        # Serialise each txn once and share the dicts across sessions:
        # receivers rebuild Transaction objects and never mutate these.
        shared = [(t.to_dict(), t.keys, t.byte_size()) for t in unique]
        # Route each txn to its audience through the inverted interest
        # index; sessions outside every audience share one empty push
        # (receivers never mutate pushes — same contract as keepalives).
        audiences: Dict[str, List[Tuple[dict, int]]] = {}
        by_key = self._sessions_by_key
        for payload, keys, size in shared:
            targets: Set[str] = set()
            for key in keys:
                ids = by_key.get(key)
                if ids:
                    targets.update(ids)
            for edge_id in targets:
                audiences.setdefault(edge_id, []).append((payload, size))
        empty_push = UpdatePush((), stable, prev)
        if self.crashed:
            return
        # Bypass Actor.send: the crash flag cannot flip mid-loop in a
        # single-threaded simulation, and this fan-out runs once per
        # session per stability round — the hottest send site at scale.
        network_send = self.network.send
        me = self.node_id
        get_audience = audiences.get
        for session in self.sessions.values():
            relevant = get_audience(session.edge_id)
            if relevant:
                push = UpdatePush(tuple(p for p, _ in relevant),
                                  stable, prev)
                size = sum(s for _, s in relevant) + 16 + 8 * len(stable)
                network_send(me, session.edge_id, push, size)
            else:
                network_send(me, session.edge_id, empty_push, 16)

    def _keepalive(self) -> None:
        """Empty push so edges can detect missed deltas after a heal."""
        if not self.sessions:
            return
        prev = self._pushed_stable.to_dict()
        stable = self.stable_vector.to_dict()
        push = UpdatePush((), stable, prev)
        size = push.wire_size()
        for session in self.sessions.values():
            self.send(session.edge_id, push, size_bytes=size)

    # ------------------------------------------------------------------
    # introspection for tests and benchmarks
    # ------------------------------------------------------------------
    def transaction(self, dot: Dot) -> Optional[Transaction]:
        return self._txn_by_dot.get(dot)

    def holds(self, dot: Dot) -> bool:
        """Has this DC received (applied) the transaction?"""
        return self.dots.seen(dot)

    def stream_gaps(self) -> Dict[str, List[int]]:
        """Missing stream positions below each applied frontier.

        Contiguous application is a protocol invariant: every position
        ``1 .. state_vector[origin]`` must have a recorded dot.  A gap
        means the DC advertised transactions it never stored — exactly
        the failure batching must not introduce.  The chaos harness
        checkpoints this; an empty dict is healthy.
        """
        gaps: Dict[str, List[int]] = {}
        for origin in self.state_vector:
            stream = self._stream_dots.get(origin, {})
            missing = [ts
                       for ts in range(1, self.state_vector[origin] + 1)
                       if ts not in stream
                       and not (self._partial
                                and self._skip_covered(origin, ts))]
            if missing:
                gaps[origin] = missing
        return gaps

    def shard_stream_gaps(self) -> Dict[str, List[int]]:
        """Skip-covered positions our interest set says we should hold.

        A position elided by a skip run whose mask intersects our
        current interest must eventually be filled by a backfill (or a
        racing full resend); shards with a backfill still in flight are
        excluded.  The chaos checker requires this empty — it is the
        per-shard analogue of :meth:`stream_gaps`.
        """
        if not self._partial:
            return {}
        pending = self._pending_backfill_mask()
        gaps: Dict[str, List[int]] = {}
        for origin, runs in self._skip_runs.items():
            stream = self._stream_dots.get(origin, {})
            missing = []
            for run in runs:
                need = run.mask & self._interest_mask & ~pending
                if not need:
                    continue
                for ts in range(run.start_ts, run.end_ts + 1):
                    if ts not in stream:
                        missing.append(ts)
            if missing:
                gaps[origin] = missing
        return gaps

    def interest_shards(self) -> Tuple[int, ...]:
        """Sorted shard ids in this DC's current interest set."""
        return shards_of_mask(self._interest_mask)

    def repl_link_counters(self) -> Dict[str, Dict[str, int]]:
        """Per-peer batch/byte counters of the outbound repl links."""
        return {peer: link.counters()
                for peer, link in self._repl_links.items()}

    def state_digest(self) -> Dict[ObjectKey, Any]:
        """Backend value of every stored key, for convergence checks.

        Reads each shard journal with no visibility filter: at quiescence
        this is the authoritative merged state every replica must agree
        with.
        """
        digest: Dict[ObjectKey, Any] = {}
        for shard in self.shards.values():
            for key in shard.store.keys():
                journal = shard.store.journal(key)
                if journal is not None:
                    digest[key] = journal.materialise(None).value()
        return digest

    @property
    def committed_count(self) -> int:
        return self.stats["committed"]
