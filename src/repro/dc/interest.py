"""Shard interest sets for partial geo-replication.

Partial replication (Sutra & Shapiro; PaRiS) prunes the full mesh into
an interest graph: every object key hashes into one of ``n_shards``
global shards, each DC *serves* a deterministic subset of shards (the
home assignment, round-robin by replica factor), and a DC's **interest
set** is the union of the shards it serves and the shards its attached
edge sessions subscribe to.  Replication links then ship only stream
entries whose write set intersects the receiver's interest; everything
else travels as a skip marker.

Shard sets are represented as bitmasks (``n_shards <= 64``): interest
tests on the replication hot path are single ``&`` operations, and skip
runs on the wire carry the mask of the entries they elide so receivers
can audit (and heal) wrongly pruned positions.

The map is *shared configuration*: every DC of a cluster is built from
the same ``ShardMap``, so peers can derive each other's served shards
without a bootstrap exchange — only session-driven subscriptions need
the interest-advert protocol.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.txn import ObjectKey

#: Bitmask representation caps the global shard count.
MAX_SHARDS = 64


def shard_of(key: ObjectKey, n_shards: int) -> int:
    """Stable global shard of a key (md5, like the intra-DC ring)."""
    digest = hashlib.md5(f"{key.bucket}/{key.key}".encode()).digest()
    return int.from_bytes(digest[:8], "big") % n_shards


def mask_of(shards: Iterable[int]) -> int:
    """Bitmask of a shard collection."""
    mask = 0
    for shard in shards:
        mask |= 1 << shard
    return mask


def shards_of_mask(mask: int) -> Tuple[int, ...]:
    """Sorted shard ids set in a bitmask."""
    shards = []
    shard = 0
    while mask:
        if mask & 1:
            shards.append(shard)
        mask >>= 1
        shard += 1
    return tuple(shards)


class ShardMap:
    """Global shard space plus the deterministic home assignment.

    ``dc_ids`` must list every DC of the cluster (sorted internally, so
    any construction order yields the same assignment).  Shard ``s`` is
    homed at ``replica_factor`` consecutive DCs starting at
    ``s % len(dc_ids)`` — round-robin, so homes spread evenly and every
    DC serves ``ceil(n_shards * rf / n_dcs)``-ish shards.
    """

    def __init__(self, n_shards: int, dc_ids: Iterable[str],
                 replica_factor: Optional[int] = None):
        if not 1 <= n_shards <= MAX_SHARDS:
            raise ValueError(
                f"n_shards must be in 1..{MAX_SHARDS}, got {n_shards}")
        self.n_shards = n_shards
        self.dc_ids: List[str] = sorted(dc_ids)
        if not self.dc_ids:
            raise ValueError("ShardMap needs at least one DC")
        if replica_factor is None:
            replica_factor = len(self.dc_ids)
        if not 1 <= replica_factor <= len(self.dc_ids):
            raise ValueError(
                f"replica_factor must be in 1..{len(self.dc_ids)}, "
                f"got {replica_factor}")
        self.replica_factor = replica_factor
        self._served: Dict[str, int] = {dc: 0 for dc in self.dc_ids}
        for shard in range(n_shards):
            for dc in self.homes(shard):
                self._served[dc] |= 1 << shard

    def shard_of(self, key: ObjectKey) -> int:
        return shard_of(key, self.n_shards)

    def mask_of_keys(self, keys: Iterable[ObjectKey]) -> int:
        """Interest mask of a transaction's write set (0 if no writes)."""
        mask = 0
        for key in keys:
            mask |= 1 << self.shard_of(key)
        return mask

    def homes(self, shard: int) -> Tuple[str, ...]:
        """The DCs serving ``shard``, in assignment order."""
        n = len(self.dc_ids)
        return tuple(self.dc_ids[(shard + j) % n]
                     for j in range(self.replica_factor))

    def served(self, dc_id: str) -> int:
        """Bitmask of the shards ``dc_id`` serves (0 for unknown DCs)."""
        return self._served.get(dc_id, 0)

    @property
    def full_mask(self) -> int:
        return (1 << self.n_shards) - 1

    def all_interested(self) -> bool:
        """True when every DC serves every shard (the full baseline)."""
        full = self.full_mask
        return all(mask == full for mask in self._served.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ShardMap(n_shards={self.n_shards}, "
                f"dcs={len(self.dc_ids)}, rf={self.replica_factor})")
