"""Wire messages of the Colony infrastructure protocols.

Three message families:

* edge/client <-> DC: sessions, interest sets, asynchronous edge commit,
  update pushes, remote (in-DC) transactions;
* DC <-> DC: geo-replication and K-stability gossip;
* intra-DC: ClockSI-style two-phase commit between the transaction
  coordinator and the shard servers, plus shard reads.

Messages carry plain dictionaries (the ``to_dict`` forms of the core
types) so that their simulated byte sizes are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Optional, Tuple


# -- edge/client <-> DC -------------------------------------------------------

@dataclass(frozen=True, slots=True)
class SessionOpen:
    """Edge node opens (or re-opens after migration) a session."""

    edge_id: str
    interest: Tuple[Tuple[dict, str], ...]  # ((key_dict, type_name), ...)
    state_vector: Dict[str, int]
    # Dots of local transactions the edge state depends upon (unacked).
    local_deps: Tuple[dict, ...] = ()
    credentials: Optional[str] = None


@dataclass(frozen=True, slots=True)
class SessionAck:
    dc_id: str
    objects: Tuple[dict, ...]        # journal snapshot states
    stable_vector: Dict[str, int]
    accepted: bool = True
    reason: Optional[str] = None


@dataclass(frozen=True, slots=True)
class InterestChange:
    edge_id: str
    add: Tuple[Tuple[dict, str], ...] = ()
    remove: Tuple[dict, ...] = ()
    # The edge's current state vector: seeds must not be older than it.
    state_vector: Dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class ObjectRequest:
    edge_id: str
    key: dict
    type_name: str
    state_vector: Dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class ObjectResponse:
    object_state: dict
    stable_vector: Dict[str, int]


@dataclass(frozen=True, slots=True)
class EdgeCommit:
    """An edge transaction shipped for (asynchronous) DC commitment."""

    txn: dict


@dataclass(frozen=True, slots=True)
class EdgeCommitBatch:
    """Several buffered edge transactions shipped together, in commit
    order (the writeback cache policy, section 6.1)."""

    txns: Tuple[dict, ...]


@dataclass(frozen=True, slots=True)
class CommitAck:
    """The concrete commit descriptor for a previously symbolic commit."""

    dot: dict
    entries: Dict[str, int]


@dataclass(frozen=True, slots=True)
class CommitReject:
    dot: dict
    reason: str


@dataclass(frozen=True, slots=True)
class UpdatePush:
    """K-stable updates for an edge's interest set, in DC commit order.

    ``prev_vector`` is the cut this delta starts from: a receiver whose
    state does not cover it has missed a push (e.g. across a partition)
    and must re-synchronise instead of blindly advancing its vector.
    """

    txns: Tuple[dict, ...]
    stable_vector: Dict[str, int]
    prev_vector: Dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class RemoteTxnRequest:
    """A transaction executed *in* the DC (baseline mode or migration §3.9).

    ``reads`` name objects to read; ``updates`` are (key_dict, type_name,
    method, args) tuples prepared server-side.  ``snapshot`` optionally
    pins the snapshot (transaction migration primes it with the client's
    state vector).
    """

    client_id: str
    request_id: int
    reads: Tuple[Tuple[dict, str], ...] = ()
    updates: Tuple[Tuple[dict, str, str, tuple], ...] = ()
    snapshot: Optional[Dict[str, int]] = None
    local_deps: Tuple[dict, ...] = ()
    issuer: Optional[str] = None
    # Client-assigned dot for the update transaction (keeps client dot
    # spaces collision-free and makes retries idempotent).
    dot: Optional[dict] = None


@dataclass(frozen=True, slots=True)
class RemoteTxnReply:
    request_id: int
    values: Tuple[Any, ...]
    committed: bool
    commit_entries: Dict[str, int] = field(default_factory=dict)
    reason: Optional[str] = None


# -- DC <-> DC ------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class DCSyncPing:
    """Anti-entropy heartbeat: the sender's applied and stable vectors.

    A receiver that is *ahead* on its own stream resends the missing
    suffix, repairing replication after partitions.  A receiver that
    holds transactions past the sender's *stable* frontier re-acks
    them, repairing K-stability after lost StabilityAck gossip.
    """

    state_vector: Dict[str, int]
    stable_vector: Dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class Replicate:
    """Geo-replication: one committed transaction, shipped in order."""

    txn: dict
    holders: FrozenSet[str]


@dataclass(frozen=True, slots=True)
class StabilityAck:
    """Gossip: the sender now also stores the transaction."""

    dot: dict
    holders: FrozenSet[str]


# -- intra-DC (coordinator <-> shard server) ----------------------------------------

@dataclass(frozen=True, slots=True)
class ShardPrepare:
    txid: int
    txn: dict


@dataclass(frozen=True, slots=True)
class ShardVote:
    txid: int
    ok: bool


@dataclass(frozen=True, slots=True)
class ShardCommit:
    txid: int
    txn: dict


@dataclass(frozen=True, slots=True)
class ShardAbort:
    txid: int


@dataclass(frozen=True, slots=True)
class ShardApply:
    """Replicated/edge transaction applied to the owning shard (no 2PC)."""

    txn: dict


@dataclass(frozen=True, slots=True)
class ShardCompactMsg:
    """Fold journalled entries covered by ``frontier`` into base versions."""

    frontier: Dict[str, int]


@dataclass(frozen=True, slots=True)
class ShardRead:
    request_id: int
    key: dict
    type_name: str
    visible_vector: Dict[str, int]
    # Extra dots visible by identity (unacked edge txns of a migrated
    # transaction's snapshot, section 3.9).
    extra_dots: Tuple[dict, ...] = ()


@dataclass(frozen=True, slots=True)
class ShardReadReply:
    request_id: int
    object_state: dict
