"""Wire messages of the Colony infrastructure protocols.

Three message families:

* edge/client <-> DC: sessions, interest sets, asynchronous edge commit,
  update pushes, remote (in-DC) transactions;
* DC <-> DC: geo-replication and K-stability gossip;
* intra-DC: ClockSI-style two-phase commit between the transaction
  coordinator and the shard servers, plus shard reads.

Messages carry plain dictionaries (the ``to_dict`` forms of the core
types) so that their simulated byte sizes are meaningful.  Every message
implements ``wire_size()`` — an honest estimate of its serialised size —
which the network uses automatically when a ``send()`` call site does not
pass an explicit ``size_bytes``, making ``NetworkStats.bytes_sent`` a
real wire-cost metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Mapping, Optional, Sequence, Tuple

#: Fixed per-message framing overhead (type tag, lengths, checksums).
HEADER_BYTES = 16
#: A dot dict on the wire: tag scaffolding, the ``origin``/``counter``
#: field names, a short origin id and a varint counter.  Calibrated
#: against the transport codec (M205 keeps it honest).
DOT_BYTES = 24
#: Dict scaffolding of a serialised transaction beyond its payload:
#: the ``dot``/``origin``/``snapshot``/``commit``/``writes``/``issuer``
#: field names, nested dict tags and the origin/issuer ids.
TXN_OVERHEAD_BYTES = 96
#: Dict scaffolding of one write: the ``key``/``op`` envelope plus the
#: ``type``/``method``/``payload``/``tag`` field names.
WRITE_OVERHEAD_BYTES = 64
#: Key dict plus ``type``/``base``/``base_dots`` field names of a
#: journal snapshot state.
OBJECT_STATE_OVERHEAD_BYTES = 60
#: ``dot``/``origin``/``sv``/``deps``/``cx``/``writes`` field names of
#: one replication stream entry.
STREAM_ENTRY_OVERHEAD_BYTES = 48


def vector_wire_size(vector: Mapping[Any, int]) -> int:
    """8 bytes per entry, matching ``VectorClock.byte_size``."""
    return 8 * len(vector)


def _writes_wire_size(writes: Sequence[Mapping[str, Any]]) -> int:
    total = 0
    for write in writes:
        key = write.get("key") or {}
        total += (WRITE_OVERHEAD_BYTES
                  + len(str(key.get("bucket", "")))
                  + len(str(key.get("key", ""))))
        op = write.get("op") or {}
        total += (len(str(op.get("type", "")))
                  + len(str(op.get("method", "")))
                  + len(repr(op.get("payload", {}))))
    return total


def txn_wire_size(txn: Mapping[str, Any]) -> int:
    """Wire size of a serialised transaction.

    Mirrors ``Transaction.byte_size`` so dict payloads and live objects
    account identically: the txn envelope, a dot, 8 bytes per
    snapshot-vector entry, a dot per local dep, 8 per commit entry
    (minimum one, the symbolic placeholder), plus the writes.
    """
    snapshot = txn.get("snapshot") or {}
    commit = (txn.get("commit") or {}).get("entries") or {}
    size = TXN_OVERHEAD_BYTES + DOT_BYTES
    size += vector_wire_size(snapshot.get("vector") or {})
    size += DOT_BYTES * len(snapshot.get("local_deps") or ())
    size += 8 * max(1, len(commit))
    size += _writes_wire_size(txn.get("writes") or ())
    return size


def object_state_wire_size(state: Mapping[str, Any]) -> int:
    """Journal snapshot states shipped in seeds and read replies."""
    return (OBJECT_STATE_OVERHEAD_BYTES + len(repr(state.get("base")))
            + DOT_BYTES * len(state.get("base_dots") or ()))


def stream_entry_wire_size(entry: Mapping[str, Any]) -> int:
    """Wire size of one delta-encoded ``ReplicateBatch`` entry.

    The stream origin's commit entry is implicit in the frame position
    and the snapshot vector is a delta against the frame base, so an
    entry whose snapshot sits at the link frontier costs just the dot,
    the origin id, the entry scaffolding and its writes.
    """
    size = STREAM_ENTRY_OVERHEAD_BYTES + DOT_BYTES
    size += len(str(entry.get("origin", "")))
    size += vector_wire_size(entry.get("sv") or {})
    size += DOT_BYTES * len(entry.get("deps") or ())
    size += 8 * len(entry.get("cx") or {})
    size += _writes_wire_size(entry.get("writes") or ())
    return size


# -- edge/client <-> DC -------------------------------------------------------

@dataclass(frozen=True, slots=True)
class SessionOpen:
    """Edge node opens (or re-opens after migration) a session."""

    edge_id: str
    interest: Tuple[Tuple[dict, str], ...]  # ((key_dict, type_name), ...)
    state_vector: Dict[str, int]
    # Dots of local transactions the edge state depends upon (unacked).
    local_deps: Tuple[dict, ...] = ()
    credentials: Optional[str] = None

    def wire_size(self) -> int:
        return (HEADER_BYTES + len(self.edge_id)
                + 24 * len(self.interest)
                + vector_wire_size(self.state_vector)
                + DOT_BYTES * len(self.local_deps))


@dataclass(frozen=True, slots=True)
class SessionAck:
    dc_id: str
    objects: Tuple[dict, ...]        # journal snapshot states
    stable_vector: Dict[str, int]
    accepted: bool = True
    reason: Optional[str] = None

    def wire_size(self) -> int:
        return (HEADER_BYTES
                + sum(object_state_wire_size(o) for o in self.objects)
                + vector_wire_size(self.stable_vector))


@dataclass(frozen=True, slots=True)
class InterestChange:
    edge_id: str
    add: Tuple[Tuple[dict, str], ...] = ()
    remove: Tuple[dict, ...] = ()
    # The edge's current state vector: seeds must not be older than it.
    state_vector: Dict[str, int] = field(default_factory=dict)

    def wire_size(self) -> int:
        return (HEADER_BYTES + len(self.edge_id) + 24 * len(self.add)
                + DOT_BYTES * len(self.remove)
                + vector_wire_size(self.state_vector))


@dataclass(frozen=True, slots=True)
class ObjectRequest:
    edge_id: str
    key: dict
    type_name: str
    state_vector: Dict[str, int] = field(default_factory=dict)

    def wire_size(self) -> int:
        return (HEADER_BYTES + len(self.edge_id) + 24
                + vector_wire_size(self.state_vector))


@dataclass(frozen=True, slots=True)
class ObjectResponse:
    object_state: dict
    stable_vector: Dict[str, int]

    def wire_size(self) -> int:
        return (HEADER_BYTES + object_state_wire_size(self.object_state)
                + vector_wire_size(self.stable_vector))


@dataclass(frozen=True, slots=True)
class EdgeCommit:
    """An edge transaction shipped for (asynchronous) DC commitment."""

    txn: dict

    def wire_size(self) -> int:
        return HEADER_BYTES + txn_wire_size(self.txn)


@dataclass(frozen=True, slots=True)
class EdgeCommitBatch:
    """Several buffered edge transactions shipped together, in commit
    order (the writeback cache policy, section 6.1)."""

    txns: Tuple[dict, ...]

    def wire_size(self) -> int:
        return HEADER_BYTES + sum(txn_wire_size(t) for t in self.txns)


@dataclass(frozen=True, slots=True)
class CommitAck:
    """The concrete commit descriptor for a previously symbolic commit."""

    dot: dict
    entries: Dict[str, int]

    def wire_size(self) -> int:
        return HEADER_BYTES + DOT_BYTES + 8 * len(self.entries)


@dataclass(frozen=True, slots=True)
class CommitReject:
    dot: dict
    reason: str

    def wire_size(self) -> int:
        return HEADER_BYTES + DOT_BYTES + len(self.reason)


@dataclass(frozen=True, slots=True)
class UpdatePush:
    """K-stable updates for an edge's interest set, in DC commit order.

    ``prev_vector`` is the cut this delta starts from: a receiver whose
    state does not cover it has missed a push (e.g. across a partition)
    and must re-synchronise instead of blindly advancing its vector.
    """

    txns: Tuple[dict, ...]
    stable_vector: Dict[str, int]
    prev_vector: Dict[str, int] = field(default_factory=dict)

    def wire_size(self) -> int:
        return (HEADER_BYTES + sum(txn_wire_size(t) for t in self.txns)
                + vector_wire_size(self.stable_vector)
                + vector_wire_size(self.prev_vector))


@dataclass(frozen=True, slots=True)
class RemoteTxnRequest:
    """A transaction executed *in* the DC (baseline mode or migration §3.9).

    ``reads`` name objects to read; ``updates`` are (key_dict, type_name,
    method, args) tuples prepared server-side.  ``snapshot`` optionally
    pins the snapshot (transaction migration primes it with the client's
    state vector).
    """

    client_id: str
    request_id: int
    reads: Tuple[Tuple[dict, str], ...] = ()
    updates: Tuple[Tuple[dict, str, str, tuple], ...] = ()
    snapshot: Optional[Dict[str, int]] = None
    local_deps: Tuple[dict, ...] = ()
    issuer: Optional[str] = None
    # Client-assigned dot for the update transaction (keeps client dot
    # spaces collision-free and makes retries idempotent).
    dot: Optional[dict] = None

    def wire_size(self) -> int:
        return (HEADER_BYTES + len(self.client_id)
                + 24 * len(self.reads)
                + sum(48 + len(repr(args))
                      for _k, _t, _m, args in self.updates)
                + vector_wire_size(self.snapshot or {})
                + DOT_BYTES * len(self.local_deps)
                + (DOT_BYTES if self.dot is not None else 0))


@dataclass(frozen=True, slots=True)
class RemoteTxnReply:
    request_id: int
    values: Tuple[Any, ...]
    committed: bool
    commit_entries: Dict[str, int] = field(default_factory=dict)
    reason: Optional[str] = None

    def wire_size(self) -> int:
        return (HEADER_BYTES + len(repr(self.values))
                + 8 * len(self.commit_entries))


# -- DC <-> DC ------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class DCSyncPing:
    """Anti-entropy heartbeat: the sender's applied and stable vectors.

    A receiver that is *ahead* on its own stream resends the missing
    suffix, repairing replication after partitions.  A receiver that
    holds transactions past the sender's *stable* frontier re-acks
    them, repairing K-stability after lost StabilityAck gossip.

    In partial mode the ping also carries the sender's interest mask
    and advert sequence number, so a lost :class:`InterestAdvert` heals
    within one sync period (``interest_mask is None`` outside partial
    mode keeps the legacy wire size untouched).
    """

    state_vector: Dict[str, int]
    stable_vector: Dict[str, int] = field(default_factory=dict)
    interest_mask: Optional[int] = None
    interest_seq: int = 0

    def wire_size(self) -> int:
        return (HEADER_BYTES + vector_wire_size(self.state_vector)
                + vector_wire_size(self.stable_vector)
                + (16 if self.interest_mask is not None else 0))


@dataclass(frozen=True, slots=True)
class Replicate:
    """Geo-replication: one committed transaction, shipped in order.

    Legacy (unbatched) wire format: live traffic travels in
    :class:`ReplicateBatch` frames; this survives for the unbatched
    comparison mode and for compatibility with hand-injected frames.
    """

    txn: dict
    holders: FrozenSet[str]

    def wire_size(self) -> int:
        return (HEADER_BYTES + txn_wire_size(self.txn)
                + 8 * len(self.holders))


@dataclass(frozen=True, slots=True)
class StabilityAck:
    """Gossip: the sender now also stores the transaction.

    Legacy (unbatched) per-transaction gossip; batched replication
    coalesces this into the applied vectors on :class:`ReplicateBatchAck`
    and :class:`DCSyncPing`.
    """

    dot: dict
    holders: FrozenSet[str]

    def wire_size(self) -> int:
        return HEADER_BYTES + DOT_BYTES + 8 * len(self.holders)


@dataclass(frozen=True, slots=True)
class ReplicateBatch:
    """Batched log shipping: a contiguous run of one origin's stream.

    ``entries[i]`` is the delta-encoded transaction committed at origin
    timestamp ``start_ts + i``: its snapshot vector is a sparse delta
    against the previous entry's vector — ``base_vector`` seeds the
    chain and is carried on the frame so decoding is self-contained —
    and the origin's own commit entry is implicit in the frame
    position.  The sender
    piggybacks its applied ``sender_vector``, which doubles as coalesced
    stability gossip: every transaction it covers is held by the sender.
    """

    origin_dc: str
    start_ts: int
    base_vector: Dict[str, int]
    entries: Tuple[dict, ...]
    sender_vector: Dict[str, int]

    def wire_size(self) -> int:
        return (HEADER_BYTES + len(self.origin_dc) + 8
                + vector_wire_size(self.base_vector)
                + vector_wire_size(self.sender_vector)
                + sum(stream_entry_wire_size(e) for e in self.entries))


#: Wire cost of one skip marker: a 4-byte run length + 8-byte mask.
SKIP_MARKER_BYTES = 12


@dataclass(frozen=True, slots=True)
class ReplicatePartialBatch:
    """Interest-pruned log shipping: one origin stream, holes elided.

    Same frame layout as :class:`ReplicateBatch`, but ``entries`` mixes
    two element kinds: a dict is a full chain-encoded stream entry, and
    a ``(count, shard_mask)`` pair is a *skip run* — ``count``
    consecutive positions whose (identical) write-shard mask misses the
    receiver's interest set, elided from the wire.  The flat stream
    cursor advances over both, so the receiver's state vector keeps its
    contiguity semantics: "applied **or deliberately pruned** every
    position up to here".  The mask lets the receiver audit runs
    against its own interest and request backfill for wrongly pruned
    shards (a stale sender view heals instead of losing data).

    Because only shipped entries carry snapshot vectors, the delta
    chain runs across *full* entries only; ``base_vector`` is the
    vector of the last entry shipped on this link before the frame.
    """

    origin_dc: str
    start_ts: int
    base_vector: Dict[str, int]
    entries: Tuple[Any, ...]
    sender_vector: Dict[str, int]

    def wire_size(self) -> int:
        size = (HEADER_BYTES + len(self.origin_dc) + 8
                + vector_wire_size(self.base_vector)
                + vector_wire_size(self.sender_vector))
        for element in self.entries:
            if isinstance(element, dict):
                size += stream_entry_wire_size(element)
            else:
                size += SKIP_MARKER_BYTES
        return size


@dataclass(frozen=True, slots=True)
class InterestAdvert:
    """A DC's current shard interest set, broadcast on change.

    ``shards_mask`` is the full interest bitmask (not a delta), guarded
    by ``seq`` so reordered adverts cannot regress a peer's view.  The
    ``backfill`` shards are the ones newly subscribed: each receiver
    answers with a :class:`ShardBackfill` of its *own* stream's entries
    for those shards — every origin is the authoritative holder of its
    own log, so the union of responses is a complete catch-up.
    """

    shards_mask: int
    seq: int
    backfill: Tuple[int, ...] = ()

    def wire_size(self) -> int:
        return HEADER_BYTES + 16 + 4 * len(self.backfill)


@dataclass(frozen=True, slots=True)
class ShardBackfill:
    """Catch-up for one shard: the sender's own-stream entries.

    ``entries`` are ``(origin_ts, txn_dict)`` pairs — full (non-delta)
    encodings, each carrying its explicit stream position because
    backfill is sparse.  ``upto`` is the sender's sequencer at response
    time: every own-stream entry of the shard at or below it is
    included, and anything later ships fully on the live stream (the
    interest update is processed before this response, and the link is
    FIFO), so subscribe + backfill leaves no per-shard gap.  An empty
    response still acknowledges the subscription.
    """

    shard: int
    entries: Tuple[Tuple[int, dict], ...]
    upto: int

    def wire_size(self) -> int:
        return (HEADER_BYTES + 12
                + sum(8 + txn_wire_size(t) for _ts, t in self.entries))


@dataclass(frozen=True, slots=True)
class ReplicateBatchAck:
    """Cumulative acknowledgement of batched replication.

    Carries the receiver's full applied state vector: it advances the
    sender's delta base for the link *and* stands in for per-transaction
    ``StabilityAck`` gossip (the receiver holds everything the vector
    covers).
    """

    applied_vector: Dict[str, int]

    def wire_size(self) -> int:
        return HEADER_BYTES + vector_wire_size(self.applied_vector)


# -- intra-DC (coordinator <-> shard server) ----------------------------------------

@dataclass(frozen=True, slots=True)
class ShardPrepare:
    txid: int
    txn: dict

    def wire_size(self) -> int:
        return HEADER_BYTES + 8 + txn_wire_size(self.txn)


@dataclass(frozen=True, slots=True)
class ShardVote:
    txid: int
    ok: bool

    def wire_size(self) -> int:
        return HEADER_BYTES + 9


@dataclass(frozen=True, slots=True)
class ShardCommit:
    txid: int
    txn: dict

    def wire_size(self) -> int:
        return HEADER_BYTES + 8 + txn_wire_size(self.txn)


@dataclass(frozen=True, slots=True)
class ShardAbort:
    txid: int

    def wire_size(self) -> int:
        return HEADER_BYTES + 8


@dataclass(frozen=True, slots=True)
class ShardApply:
    """Replicated/edge transaction applied to the owning shard (no 2PC)."""

    txn: dict

    def wire_size(self) -> int:
        return HEADER_BYTES + txn_wire_size(self.txn)


@dataclass(frozen=True, slots=True)
class ShardApplyBatch:
    """A run of applies flushed together after draining a replication
    batch: one message per touched shard instead of one per transaction."""

    txns: Tuple[dict, ...]

    def wire_size(self) -> int:
        return HEADER_BYTES + sum(txn_wire_size(t) for t in self.txns)


@dataclass(frozen=True, slots=True)
class ShardCompactMsg:
    """Fold journalled entries covered by ``frontier`` into base versions."""

    frontier: Dict[str, int]

    def wire_size(self) -> int:
        return HEADER_BYTES + vector_wire_size(self.frontier)


@dataclass(frozen=True, slots=True)
class ShardRead:
    request_id: int
    key: dict
    type_name: str
    visible_vector: Dict[str, int]
    # Extra dots visible by identity (unacked edge txns of a migrated
    # transaction's snapshot, section 3.9).
    extra_dots: Tuple[dict, ...] = ()

    def wire_size(self) -> int:
        return (HEADER_BYTES + 32
                + vector_wire_size(self.visible_vector)
                + DOT_BYTES * len(self.extra_dots))


@dataclass(frozen=True, slots=True)
class ShardReadReply:
    request_id: int
    object_state: dict

    def wire_size(self) -> int:
        return HEADER_BYTES + object_state_wire_size(self.object_state)
