"""Shard server: one storage node inside a data centre.

A DC shards objects across servers by consistent hashing (paper section
6.3).  Shard servers store journals and answer the coordinator's 2PC and
read messages.  They are deliberately dumb: ordering, timestamps and
visibility are the coordinator's business (the DC is one SI zone).
"""

from __future__ import annotations

import random
from typing import Any, Dict, Optional, Union

from ..core.clock import VectorClock
from ..core.dot import Dot
from ..core.journal import ObjectJournal
from ..core.txn import ObjectKey, Transaction
from ..sim.actor import Actor
from ..sim.events import EventLoop
from ..sim.network import Network
from ..transport.base import Transport
from ..store.kv import VersionedStore
from ..store.matcache import MaterialisedCache
from .messages import (ShardAbort, ShardApply, ShardApplyBatch,
                       ShardCommit, ShardCompactMsg, ShardPrepare,
                       ShardRead, ShardReadReply, ShardVote)


class ShardServer(Actor):
    """Stores the journals of the keys it owns."""

    def __init__(self, node_id: str, loop: Union[EventLoop, Transport],
                 network: Optional[Network] = None,
                 rng: Optional[random.Random] = None):
        super().__init__(node_id, loop, network, rng)
        self.store = VersionedStore(mat_cache=MaterialisedCache())
        self._prepared: Dict[int, Transaction] = {}

    def on_message(self, message: Any, sender: str) -> None:
        if isinstance(message, ShardPrepare):
            self._on_prepare(message, sender)
        elif isinstance(message, ShardCommit):
            self._on_commit(message, sender)
        elif isinstance(message, ShardAbort):
            self._prepared.pop(message.txid, None)
        elif isinstance(message, ShardApply):
            self.store.apply_transaction(Transaction.from_dict(message.txn))
        elif isinstance(message, ShardApplyBatch):
            # Replicated applies batched per drain; FIFO links keep the
            # stream order a single-txn frame would have had.
            for txn in message.txns:
                self.store.apply_transaction(Transaction.from_dict(txn))
        elif isinstance(message, ShardRead):
            self._on_read(message, sender)
        elif isinstance(message, ShardCompactMsg):
            frontier = VectorClock(message.frontier)
            self.store.compact(
                lambda e: (not e.txn.commit.is_symbolic
                           and e.txn.commit.included_in(frontier)))
        else:
            raise TypeError(f"shard {self.node_id}: unexpected"
                            f" message {message!r}")

    # -- 2PC participant -----------------------------------------------------
    def _on_prepare(self, msg: ShardPrepare, sender: str) -> None:
        txn = Transaction.from_dict(msg.txn)
        # CRDT updates merge rather than conflict, so a shard only refuses
        # when it cannot durably stage the writes (never, in simulation).
        self._prepared[msg.txid] = txn
        self.send(sender, ShardVote(msg.txid, True))

    def _on_commit(self, msg: ShardCommit, sender: str) -> None:
        self._prepared.pop(msg.txid, None)
        # The coordinator's copy carries the assigned commit stamp.
        self.store.apply_transaction(Transaction.from_dict(msg.txn))

    # -- reads -------------------------------------------------------------------
    def _on_read(self, msg: ShardRead, sender: str) -> None:
        key = ObjectKey.from_dict(msg.key)
        vector = VectorClock(msg.visible_vector)
        extras = frozenset(Dot.from_dict(d) for d in msg.extra_dots)

        def visible(entry) -> bool:
            return (entry.txn.commit.included_in(vector)
                    or entry.dot in extras)

        if self.store.has_object(key):
            # Snapshot reads mostly arrive at the DC's advancing stable
            # frontier, so the cached state replays only the delta.
            state, dots = self.store.read_with_dots(
                key, visible, type_name=msg.type_name,
                token=(vector, extras))
        else:
            journal = ObjectJournal(key, msg.type_name)
            state = journal.materialise(visible)
            dots = journal.visible_dots(visible)
        object_state = {
            "key": key.to_dict(),
            "type": msg.type_name,
            "base": state.to_dict(),
            "base_dots": [d.to_dict() for d in sorted(dots)],
        }
        self.send(sender, ShardReadReply(msg.request_id, object_state))
