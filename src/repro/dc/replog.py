"""Batched log-shipping support: stream-entry codec and link state.

Geo-replication ships each DC's commit stream as contiguous
:class:`~repro.dc.messages.ReplicateBatch` frames.  This module holds
the per-entry codec — snapshot vectors delta-encoded against a caller
supplied base, the origin's commit entry implicit in the frame
position — and the per-directed-link bookkeeping (shipped frontier,
counters) the DC keeps for each sibling.

The DC *chains* the bases: entry ``ts`` is encoded against entry
``ts - 1``'s snapshot vector and the frame's ``base_vector`` carries
the vector just before its first entry.  Consecutive snapshot vectors
differ by a handful of components, so the deltas stay tiny, and the
chain base is link-independent, so one encoding serves every sibling
link.  The codec itself is base-agnostic: any ``base`` round-trips,
only the wire size changes.

The encoded entry is a plain dict so frames stay serialisable values:

``{"dot", "origin", "issuer", "sv", "deps", "cx", "writes"}``

where ``sv`` is ``snapshot.vector.delta_from(base)``, ``deps`` the
local-dep dots, ``cx`` the *extra* equivalent commit entries (every DC
except the stream origin, present only after migration) and ``writes``
the serialised write ops.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from ..core.clock import VectorClock
from ..core.dot import Dot
from ..core.txn import CommitStamp, Snapshot, Transaction, WriteOp
from .messages import stream_entry_wire_size


def encode_stream_entry(txn: Transaction, stream_dc: str, ts: int,
                        base: VectorClock) -> Tuple[Dict[str, Any], int]:
    """Delta-encode one stream entry; returns ``(entry, wire_bytes)``.

    ``ts`` must be the origin timestamp the frame position implies
    (``start_ts + i``); the entry does not repeat it.
    """
    assigned = txn.commit.entries.get(stream_dc)
    if assigned is not None and assigned != ts:
        raise ValueError(
            f"stream position {ts} contradicts commit entry "
            f"{stream_dc}:{assigned} for {txn.dot}")
    entry = {
        "dot": txn.dot.to_dict(),
        "origin": txn.origin,
        "issuer": txn.issuer,
        "sv": txn.snapshot.vector.delta_from(base),
        "deps": [d.to_dict() for d in sorted(txn.snapshot.local_deps)],
        "cx": {dc: t for dc, t in txn.commit.entries.items()
               if dc != stream_dc},
        "writes": [w.to_dict() for w in txn.writes],
    }
    return entry, stream_entry_wire_size(entry)


def decode_stream_entry(entry: Dict[str, Any], stream_dc: str, ts: int,
                        base: VectorClock) -> Transaction:
    """Rebuild the transaction a frame entry encodes.

    Self-contained given the frame fields: ``base`` is the frame's
    ``base_vector`` and ``ts`` the timestamp its position implies.
    """
    cx = entry.get("cx")
    commit = dict(cx) if cx else {}
    commit[stream_dc] = ts
    dot = entry["dot"]
    deps = entry.get("deps")
    writes = entry.get("writes")
    return Transaction(
        dot=Dot(dot["counter"], dot["origin"]),
        origin=entry["origin"],
        snapshot=Snapshot(
            VectorClock.from_delta(base, entry.get("sv") or {}),
            [Dot.from_dict(d) for d in deps] if deps else []),
        commit=CommitStamp(commit),
        writes=[WriteOp.from_dict(w) for w in writes] if writes else [],
        issuer=entry.get("issuer"),
    )


class SkipRun:
    """A run of stream positions pruned from a partial-replication link.

    ``count`` consecutive positions starting at ``start_ts``, all of
    whose entries touch exactly the shards in ``mask`` — runs break on
    mask changes, so the mask describes *every* elided position and the
    receiver can audit a run against its own interest exactly.  These
    objects live in the receive queues (ordered with full entries by
    ``start_ts``) and, once applied, in the per-origin skip ledger that
    backs the per-shard contiguity invariant.
    """

    __slots__ = ("start_ts", "count", "mask")

    def __init__(self, start_ts: int, count: int, mask: int):
        self.start_ts = start_ts
        self.count = count
        self.mask = mask

    @property
    def end_ts(self) -> int:
        return self.start_ts + self.count - 1

    def covers(self, ts: int) -> bool:
        return self.start_ts <= ts <= self.end_ts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SkipRun({self.start_ts}..{self.end_ts}"
                f" mask={self.mask:#x})")


class ReplLink:
    """Sender-side state of one directed replication link.

    The commit stream itself is the send buffer: ``sent_ts`` marks the
    prefix of our own stream already shipped on this link, so a flush
    just walks ``sent_ts + 1 .. sequencer``.  Loss recovery rewinds
    ``sent_ts`` from the peer's advertised frontier (sync pings);
    ``last_advert`` remembers the previous advert so a rewind only
    fires when the peer *stalled* — an advert is one RTT stale, and
    rewinding past frames still in flight would resend (and at the
    receiver double-count) entries that were never lost.
    The counters feed the replication benchmarks.

    Partial mode adds ``chain_ts`` — the position of the last *full*
    entry shipped on this link, which anchors the per-link delta chain
    (pruned entries never ship a vector, so the chain must hop over
    them) — plus prune accounting: ``txns_pruned`` positions elided as
    skip runs and ``pruned_bytes`` the wire bytes that would have cost.
    """

    __slots__ = ("peer", "sent_ts", "last_advert", "batches_sent",
                 "txns_sent", "bytes_sent", "acks_in", "rewinds",
                 "chain_ts", "txns_pruned", "pruned_bytes")

    def __init__(self, peer: str):
        self.peer = peer
        self.sent_ts = 0
        self.last_advert = -1
        self.batches_sent = 0
        self.txns_sent = 0
        self.bytes_sent = 0
        self.acks_in = 0
        self.rewinds = 0
        self.chain_ts = 0
        self.txns_pruned = 0
        self.pruned_bytes = 0

    def counters(self) -> Dict[str, int]:
        return {"batches_sent": self.batches_sent,
                "txns_sent": self.txns_sent,
                "bytes_sent": self.bytes_sent,
                "acks_in": self.acks_in,
                "rewinds": self.rewinds,
                "txns_pruned": self.txns_pruned,
                "pruned_bytes": self.pruned_bytes}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ReplLink({self.peer} sent_ts={self.sent_ts}"
                f" batches={self.batches_sent} txns={self.txns_sent})")
