"""ColonyChat data model (paper section 7.1).

A team-collaboration application modelled after Slack/Mattermost, with
three main entities represented as CRDT objects:

* a **user** has a profile (map), an event list (sequence), a set of
  friends and a set of workspaces she is a member of;
* a **workspace** holds its member users with a status (owner, ordinary,
  invited, deleted) and a set of channels;
* a **channel** holds a description and the sequence of posted messages.

The schema is pure naming logic: it maps entity identifiers to object
handles so that application code and the workload generator agree on keys.
"""

from __future__ import annotations

from typing import Any, Dict

from ..api.handles import (FlagHandle, MapHandle, ORMapHandle,
                           SequenceHandle, SetHandle)

USERS_BUCKET = "users"
WORKSPACES_BUCKET = "workspaces"
CHANNELS_BUCKET = "channels"

# Workspace membership statuses (paper section 7.1).
OWNER = "owner"
ORDINARY = "ordinary"
INVITED = "invited"
DELETED = "deleted"


def user_profile(user: str) -> MapHandle:
    """Profile fields (display name, avatar...) as a grow-only map."""
    return MapHandle(f"{user}/profile", USERS_BUCKET)


def user_events(user: str) -> SequenceHandle:
    """The user's event feed (mentions, invitations...)."""
    return SequenceHandle(f"{user}/events", USERS_BUCKET)


def user_friends(user: str) -> SetHandle:
    return SetHandle(f"{user}/friends", USERS_BUCKET)


def user_workspaces(user: str) -> SetHandle:
    """Workspaces the user is a member of (one side of the invariant)."""
    return SetHandle(f"{user}/workspaces", USERS_BUCKET)


def workspace_members(workspace: str) -> MapHandle:
    """user -> status registers (the other side of the invariant)."""
    return MapHandle(f"{workspace}/members", WORKSPACES_BUCKET)


def workspace_channels(workspace: str) -> SetHandle:
    return SetHandle(f"{workspace}/channels", WORKSPACES_BUCKET)


def channel_meta(workspace: str, channel: str) -> MapHandle:
    """Channel description and settings."""
    return MapHandle(f"{workspace}/{channel}/meta", CHANNELS_BUCKET)


def channel_messages(workspace: str, channel: str) -> SequenceHandle:
    return SequenceHandle(f"{workspace}/{channel}/messages",
                          CHANNELS_BUCKET)


def channel_reactions(workspace: str, channel: str) -> ORMapHandle:
    """Per-message emoji reactions: message id -> emoji -> counter."""
    return ORMapHandle(f"{workspace}/{channel}/reactions",
                       CHANNELS_BUCKET)


def user_presence(workspace: str, user: str) -> FlagHandle:
    """Online/offline presence as an enable-wins flag."""
    return FlagHandle(f"{workspace}/{user}/presence", WORKSPACES_BUCKET)


def typing_indicator(workspace: str, channel: str) -> SetHandle:
    """Set of users currently typing in the channel."""
    return SetHandle(f"{workspace}/{channel}/typing", CHANNELS_BUCKET)


def message(author: str, text: str, at: float) -> Dict[str, Any]:
    """The message payload appended to a channel sequence."""
    return {"author": author, "text": text, "at": at,
            "id": f"{author}/{at:.3f}"}
