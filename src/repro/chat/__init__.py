"""ColonyChat: the paper's benchmark application (section 7.1)."""

from . import model
from .app import ChatApp
from .bots import ChannelBot

__all__ = ["model", "ChatApp", "ChannelBot"]
