"""Bots: automated ColonyChat users (paper section 7.1).

"A bot is a special kind of user.  It automatically triggers an action when
it observes some event, or a specific message on a channel. [...] Bots play
an important role in the benchmark, as they generate a large number of
update transactions."
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Tuple

from .app import ChatApp


class ChannelBot:
    """Reacts to visible channel updates with probabilistic replies."""

    def __init__(self, app: ChatApp, rng: random.Random,
                 react_probability: float = 0.5,
                 reply_templates: Optional[List[str]] = None,
                 now_fn: Optional[Callable[[], float]] = None):
        self.app = app
        self.rng = rng
        self.react_probability = react_probability
        self.reply_templates = reply_templates or [
            "ack", "on it", "done", "FYI: build green", "weather: sunny",
        ]
        self._now = now_fn or (lambda: 0.0)
        self._watched: List[Tuple[str, str]] = []
        self.reactions = 0
        self._suppress = 0

    def watch(self, workspace: str, channel: str) -> None:
        """Subscribe the bot to a channel; reactions post back to it."""
        self._watched.append((workspace, channel))
        self.app.follow_channel(
            workspace, channel,
            lambda _ch: self._maybe_react(workspace, channel))

    def _maybe_react(self, workspace: str, channel: str) -> None:
        # Do not react to our own reactions (avoid feedback storms).
        if self._suppress > 0:
            self._suppress -= 1
            return
        if self.rng.random() >= self.react_probability:
            return
        self.reactions += 1
        self._suppress += 1  # our own post will trigger one callback
        text = self.rng.choice(self.reply_templates)
        self.app.post_message(workspace, channel, text, at=self._now())
