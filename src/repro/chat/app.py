"""ColonyChat application logic over the public API (paper section 7.1).

Each operation is one atomic Colony transaction.  ``join_workspace`` is the
paper's flagship invariant: the user's workspace set and the workspace's
member map update atomically, so "a user is in a workspace if and only if
the workspace is in the user's profile" holds at every TCC+ snapshot.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from ..api.client import Connection, DoneFn
from . import model


class ChatApp:
    """One user's view of ColonyChat, bound to a connection."""

    def __init__(self, connection: Connection, user: str):
        self.conn = connection
        self.user = user

    # -- workspace membership -------------------------------------------------
    def join_workspace(self, workspace: str,
                       status: str = model.ORDINARY,
                       on_done: Optional[DoneFn] = None) -> None:
        members = model.workspace_members(workspace)
        workspaces = model.user_workspaces(self.user)
        self.conn.update([
            members.register(self.user).assign(status),
            workspaces.add(workspace),
        ], on_done=on_done)

    def leave_workspace(self, workspace: str,
                        on_done: Optional[DoneFn] = None) -> None:
        members = model.workspace_members(workspace)
        workspaces = model.user_workspaces(self.user)
        self.conn.update([
            members.register(self.user).assign(model.DELETED),
            workspaces.remove(workspace),
        ], on_done=on_done)

    def create_channel(self, workspace: str, channel: str,
                       description: str = "",
                       on_done: Optional[DoneFn] = None) -> None:
        channels = model.workspace_channels(workspace)
        meta = model.channel_meta(workspace, channel)
        self.conn.update([
            channels.add(channel),
            meta.register("description").assign(description),
        ], on_done=on_done)

    # -- messaging ----------------------------------------------------------------
    def post_message(self, workspace: str, channel: str, text: str,
                     at: float = 0.0,
                     on_done: Optional[DoneFn] = None) -> None:
        messages = model.channel_messages(workspace, channel)
        self.conn.update(
            messages.append(model.message(self.user, text, at)),
            on_done=on_done)

    def read_channel(self, workspace: str, channel: str,
                     on_done: Optional[Callable[[List[Any]], None]] = None) \
            -> None:
        messages = model.channel_messages(workspace, channel)

        def unwrap(value: Any, stats) -> None:
            if on_done is not None:
                on_done(value if value is not None else [])

        self.conn.read(messages, on_done=unwrap)

    def follow_channel(self, workspace: str, channel: str,
                       callback: Callable[[Any], None]) -> None:
        """Reactive subscription: run ``callback`` on new visible posts."""
        messages = model.channel_messages(workspace, channel)
        self.conn.subscribe(messages, lambda _key: callback(channel))

    # -- profile / social ------------------------------------------------------------
    def set_profile(self, field: str, value: Any,
                    on_done: Optional[DoneFn] = None) -> None:
        profile = model.user_profile(self.user)
        self.conn.update(profile.register(field).assign(value),
                         on_done=on_done)

    def add_friend(self, friend: str,
                   on_done: Optional[DoneFn] = None) -> None:
        self.conn.update(model.user_friends(self.user).add(friend),
                         on_done=on_done)

    def log_event(self, text: str, at: float = 0.0,
                  on_done: Optional[DoneFn] = None) -> None:
        events = model.user_events(self.user)
        self.conn.update(events.append({"text": text, "at": at}),
                         on_done=on_done)

    # -- reactions, presence, typing ---------------------------------------------
    def react(self, workspace: str, channel: str, message_id: str,
              emoji: str, on_done: Optional[DoneFn] = None) -> None:
        """Add an emoji reaction to a message (a nested counter)."""
        reactions = model.channel_reactions(workspace, channel)
        self.conn.update(
            reactions.counter(f"{message_id}|{emoji}").increment(1),
            on_done=on_done)

    def read_reactions(self, workspace: str, channel: str,
                       message_id: str,
                       on_done: Optional[Callable[[dict], None]] = None) \
            -> None:
        """Reactions of one message as {emoji: count}."""
        reactions = model.channel_reactions(workspace, channel)

        def unwrap(value: Any, stats) -> None:
            table = {}
            for field, count in (value or {}).items():
                msg_id, _sep, emoji = field.rpartition("|")
                if msg_id == message_id:
                    table[emoji] = count
            if on_done is not None:
                on_done(table)

        self.conn.read(reactions, on_done=unwrap)

    def set_presence(self, workspace: str, online: bool,
                     on_done: Optional[DoneFn] = None) -> None:
        presence = model.user_presence(workspace, self.user)
        update = presence.enable() if online else presence.disable()
        self.conn.update(update, on_done=on_done)

    def start_typing(self, workspace: str, channel: str,
                     on_done: Optional[DoneFn] = None) -> None:
        typing = model.typing_indicator(workspace, channel)
        self.conn.update(typing.add(self.user), on_done=on_done)

    def stop_typing(self, workspace: str, channel: str,
                    on_done: Optional[DoneFn] = None) -> None:
        typing = model.typing_indicator(workspace, channel)
        self.conn.update(typing.remove(self.user), on_done=on_done)

    # -- cache priming ------------------------------------------------------------------
    def open_workspace(self, workspace: str, channels: List[str]) -> None:
        """Declare interest in a workspace's objects (cache warm-up)."""
        handles = [model.workspace_members(workspace),
                   model.workspace_channels(workspace),
                   model.user_workspaces(self.user),
                   model.user_profile(self.user),
                   model.user_friends(self.user),
                   model.user_events(self.user)]
        for channel in channels:
            handles.append(model.channel_messages(workspace, channel))
            handles.append(model.channel_meta(workspace, channel))
        self.conn.open_bucket(handles)
