"""K-stability bookkeeping (paper section 3.8).

A transaction becomes visible to edge nodes only once it is known at >= K
data centres; the higher K, the likelier that after a migration the new DC
already holds the dependencies of the edge node's state.  DCs learn each
other's holdings through replication messages that carry the set of DCs
known to store the transaction; receivers union and re-gossip, so counts
converge monotonically.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

from .dot import Dot


class KStabilityTracker:
    """Tracks, per transaction dot, the set of DCs known to hold it."""

    def __init__(self, k_target: int):
        if k_target < 1:
            raise ValueError("K must be at least 1")
        self.k_target = k_target
        self._holders: Dict[Dot, Set[str]] = {}

    def record(self, dot: Dot, dc_ids: Iterable[str]) -> int:
        """Merge knowledge that ``dc_ids`` hold ``dot``; return new count."""
        holders = self._holders.setdefault(dot, set())
        holders.update(dc_ids)
        return len(holders)

    def holders(self, dot: Dot) -> Set[str]:
        return set(self._holders.get(dot, ()))

    def count(self, dot: Dot) -> int:
        return len(self._holders.get(dot, ()))

    def is_stable(self, dot: Dot) -> bool:
        """Is the transaction K-stable (visible to edge nodes)?"""
        return self.count(dot) >= self.k_target

    def stable_dots(self) -> Set[Dot]:
        return {dot for dot, holders in self._holders.items()
                if len(holders) >= self.k_target}

    def forget(self, dot: Dot) -> None:
        """Drop bookkeeping for a fully propagated transaction."""
        self._holders.pop(dot, None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"KStabilityTracker(K={self.k_target},"
                f" tracked={len(self._holders)})")
