"""Causal-compatibility checks used by migration (paper section 3.8).

An edge node migrating from DC *i* to DC *j* is *causally compatible* with
*j* when every dependency of its state is already present at *j*; otherwise
its transactions cannot be assigned commit vectors there and the node stays
effectively disconnected until the missing dependencies arrive.
"""

from __future__ import annotations

from typing import Iterable

from .clock import VectorClock
from .dot import Dot, DotTracker
from .txn import Snapshot, Transaction


def causally_compatible(edge_vector: VectorClock,
                        edge_dots: Iterable[Dot],
                        dc_vector: VectorClock,
                        dc_dots: DotTracker) -> bool:
    """Does the DC state include every dependency of the edge state?

    ``edge_vector``/``edge_dots`` describe the edge node's dependencies: the
    DC-committed prefix it has observed and the individual transactions it
    depends on that may not be covered by the vector (e.g. received via a
    peer group).  The DC must cover both.
    """
    if not edge_vector.leq(dc_vector):
        return False
    return all(dc_dots.seen(dot) for dot in edge_dots)


def snapshot_compatible(snapshot: Snapshot, dc_vector: VectorClock,
                        dc_dots: DotTracker) -> bool:
    """Can a DC with this state accept a transaction with this snapshot?"""
    return causally_compatible(snapshot.vector, snapshot.local_deps,
                               dc_vector, dc_dots)


def missing_dependencies(txns: Iterable[Transaction],
                         dc_vector: VectorClock,
                         dc_dots: DotTracker) -> list:
    """Transactions whose snapshots the DC cannot yet satisfy."""
    return [t for t in txns
            if not snapshot_compatible(t.snapshot, dc_vector, dc_dots)]
