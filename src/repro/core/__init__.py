"""Colony's core contribution: TCC+ metadata, journals and visibility.

* :mod:`repro.core.clock` — per-DC vector timestamps and Lamport clocks;
* :mod:`repro.core.dot` — unique transaction ids + duplicate suppression;
* :mod:`repro.core.txn` — transactions with snapshot vectors and (possibly
  symbolic, possibly multi-equivalent) commit stamps;
* :mod:`repro.core.journal` — base version + update journal per object;
* :mod:`repro.core.kstable` — K-stability gate for edge visibility;
* :mod:`repro.core.visibility` — the monotonic visibility frontier;
* :mod:`repro.core.compat` — causal-compatibility checks for migration.
"""

from .clock import LamportClock, VectorClock, lub
from .compat import (causally_compatible, missing_dependencies,
                     snapshot_compatible)
from .dot import Dot, DotTracker
from .journal import JournalEntry, ObjectJournal
from .kstable import KStabilityTracker
from .txn import CommitStamp, ObjectKey, Snapshot, Transaction, WriteOp
from .visibility import (CausalityViolation, VisibleState, admissible,
                         admit_ready)

__all__ = [
    "LamportClock", "VectorClock", "lub",
    "Dot", "DotTracker",
    "CommitStamp", "ObjectKey", "Snapshot", "Transaction", "WriteOp",
    "JournalEntry", "ObjectJournal",
    "KStabilityTracker",
    "CausalityViolation", "VisibleState", "admissible", "admit_ready",
    "causally_compatible", "snapshot_compatible", "missing_dependencies",
]
