"""Per-object versioned storage: base version + journal of updates.

Paper section 4.1: "Colony stores an object persistently as a base version
and a journal of updates since the base version.  To materialise an
arbitrary object version, the cache first reads the base version from the
store, and applies the missing updates from the journal.  Occasionally, the
system advances the base version."

Journal entries are applied in dot order.  Dots are Lamport-based
(:mod:`repro.core.clock`), so dot order linearly extends happened-before;
causally ordered updates therefore apply in order, and concurrent updates —
whose CRDT effects commute — apply in the same (arbitrary but deterministic)
order at every replica, giving strong convergence.
"""

from __future__ import annotations

import itertools
from bisect import insort
from typing import (Any, Callable, Dict, FrozenSet, Iterable, List,
                    Optional, Set)

from ..crdt.base import OpBasedCRDT, Operation, new_crdt, state_from_dict
from .dot import Dot
from .txn import ObjectKey, Transaction


class JournalEntry:
    """One transaction's updates to one object."""

    __slots__ = ("dot", "txn", "ops")

    def __init__(self, txn: Transaction, ops: List[Operation]):
        self.dot = txn.dot
        self.txn = txn
        self.ops = ops  # already tagged

    def sort_key(self):
        return self.dot.as_tuple()

    def __lt__(self, other: "JournalEntry") -> bool:
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JournalEntry({self.dot}, {len(self.ops)} ops)"


# A predicate deciding whether a journal entry is visible to a reader.
EntryFilter = Callable[[JournalEntry], bool]

_JOURNAL_UIDS = itertools.count()


class ObjectJournal:
    """Base version + ordered journal for a single object."""

    def __init__(self, key: ObjectKey, type_name: str):
        self.key = key
        self.type_name = type_name
        self._base: OpBasedCRDT = new_crdt(type_name)
        self._base_dots: Set[Dot] = set()
        self._base_dots_view: Optional[FrozenSet[Dot]] = None
        self._entries: List[JournalEntry] = []  # kept sorted by dot
        self._index: Dict[Dot, JournalEntry] = {}
        #: Bumped on every append/compaction; readers use it to cache
        #: materialised versions.  ``uid`` distinguishes journal
        #: incarnations after a drop/reinstall.
        self.version = 0
        #: Bumped only when the base version advances (compaction or a
        #: snapshot install): a cached materialisation survives appends
        #: but must re-check its applied set against the new base.
        self.base_version = 0
        self.uid = next(_JOURNAL_UIDS)

    # -- writes ---------------------------------------------------------------
    def append(self, txn: Transaction) -> bool:
        """Record a transaction's tagged ops for this object.

        Returns False when the transaction was already journalled (or
        folded into the base), making delivery idempotent.
        """
        if txn.dot in self._index or txn.dot in self._base_dots:
            return False
        ops = [w.op for w in txn.tagged_writes() if w.key == self.key]
        if not ops:
            return False
        entry = JournalEntry(txn, ops)
        insort(self._entries, entry)
        self._index[txn.dot] = entry
        self.version += 1
        return True

    def has(self, dot: Dot) -> bool:
        return dot in self._index or dot in self._base_dots

    # -- reads ------------------------------------------------------------------
    def materialise(self, visible: Optional[EntryFilter] = None) \
            -> OpBasedCRDT:
        """Build the object version exposing entries accepted by ``visible``.

        With no filter, every journalled update is applied (the backend
        view).  The visibility layer passes a TCC+/security filter.
        """
        state = self._base.clone()
        for entry in self._entries:
            if visible is None or visible(entry):
                for op in entry.ops:
                    state.apply(op)
        return state

    def visible_dots(self, visible: Optional[EntryFilter] = None) \
            -> Set[Dot]:
        """Dots contributing to the materialisation (incl. base)."""
        dots = set(self._base_dots)
        for entry in self._entries:
            if visible is None or visible(entry):
                dots.add(entry.dot)
        return dots

    # -- compaction ----------------------------------------------------------------
    def advance_base(self, stable: EntryFilter) -> int:
        """Fold entries accepted by ``stable`` into the base version.

        Only a *prefix* in dot order may be folded: folding an entry while
        an earlier-dot entry stays journalled would re-order application.
        Returns the number of entries folded.
        """
        entries = self._entries
        folded = 0
        while folded < len(entries) and stable(entries[folded]):
            folded += 1
        if not folded:
            return 0
        for entry in entries[:folded]:
            del self._index[entry.dot]
            for op in entry.ops:
                self._base.apply(op)
            self._base_dots.add(entry.dot)
        self._entries = entries[folded:]
        self._base_dots_view = None
        self.version += 1
        self.base_version += 1
        return folded

    def applied_dots(self) -> List[Dot]:
        """Every dot applied to this object, *with multiplicity*.

        The base set and the entry index each deduplicate on their own,
        but nothing structurally prevents one dot from being folded into
        the base and journalled again (e.g. by a buggy re-seed after
        migration).  Invariant checkers scan this census for duplicates.
        """
        dots = sorted(self._base_dots)
        dots.extend(entry.dot for entry in self._entries)
        return dots

    @property
    def journal_length(self) -> int:
        return len(self._entries)

    @property
    def base_dots(self) -> FrozenSet[Dot]:
        """Dots already folded into the base version (read-only view)."""
        if self._base_dots_view is None:
            self._base_dots_view = frozenset(self._base_dots)
        return self._base_dots_view

    def entries(self) -> List[JournalEntry]:
        return list(self._entries)

    def iter_entries(self) -> Iterable[JournalEntry]:
        """The live entry list, sorted by dot.  Callers must not mutate."""
        return self._entries

    # -- (de)serialisation ------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, Any]:
        """Serialise the base version (journal entries travel as txns)."""
        return {
            "key": self.key.to_dict(),
            "type": self.type_name,
            "base": self._base.to_dict(),
            "base_dots": [d.to_dict() for d in sorted(self._base_dots)],
        }

    @classmethod
    def from_snapshot_state(cls, data: Dict[str, Any]) -> "ObjectJournal":
        journal = cls(ObjectKey.from_dict(data["key"]), data["type"])
        journal._base = state_from_dict(data["base"])
        journal._base_dots = {Dot.from_dict(d) for d in data["base_dots"]}
        return journal

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ObjectJournal({self.key}, base_dots="
                f"{len(self._base_dots)}, journal={len(self._entries)})")
