"""The visibility layer (paper sections 3 and 4).

Colony separates *state management* (the backend freely stores and ships
journal entries) from *visibility* (what an application may observe).  A
transaction becomes visible at a node only when:

* its causal dependencies are visible (the snapshot vector is covered and
  every symbolic local dependency is present) — the CC invariant;
* at an edge node, it is K-stable or originated locally (read-my-writes);
* it passes the security gate (ACL check, transitively — see
  :mod:`repro.security.enforcement`).

``VisibleState`` tracks the frontier a node exposes to readers: a state
vector (LUB of admitted commit stamps) plus the set of admitted dots.  It is
monotonic, which yields rollback-freedom.
"""

from __future__ import annotations

from typing import (Callable, Dict, FrozenSet, Iterable, List, Optional,
                    Set, Tuple)

from .clock import VectorClock
from .dot import Dot
from .journal import JournalEntry
from .txn import Transaction


# Extra admission predicate (K-stability, ACL...): txn -> allowed?
AdmissionCheck = Callable[[Transaction], bool]


class VisibleState:
    """Monotonic visibility frontier of a node."""

    def __init__(self, vector: Optional[VectorClock] = None):
        self.vector = vector or VectorClock.zero()
        self._dots: Set[Dot] = set()
        self._dots_view: Optional[FrozenSet[Dot]] = None
        self._txns: Dict[Dot, Transaction] = {}
        #: Monotonic counter bumped whenever the frontier grows (an
        #: admission, a resolved commit, externally learned progress).
        #: Readers compare fingerprints instead of re-evaluating
        #: per-entry visibility callbacks; equal fingerprints guarantee
        #: an identical visible set.
        self.fingerprint = 0

    # -- queries -----------------------------------------------------------
    def includes_dot(self, dot: Dot) -> bool:
        return dot in self._dots

    def includes(self, txn: Transaction) -> bool:
        """Is this transaction within the visible frontier?"""
        if txn.dot in self._dots:
            return True
        return txn.commit.included_in(self.vector)

    def dependencies_met(self, txn: Transaction) -> bool:
        """CC admission: are all of txn's dependencies visible?"""
        if not txn.snapshot.vector.leq(self.vector):
            return False
        return all(self._covers_dot(d) for d in txn.snapshot.local_deps)

    def _covers_dot(self, dot: Dot) -> bool:
        if dot in self._dots:
            return True
        txn = self._txns.get(dot)
        if txn is not None:
            return txn.commit.included_in(self.vector)
        return False

    # -- mutation ------------------------------------------------------------
    def admit(self, txn: Transaction) -> bool:
        """Make a transaction visible; requires dependencies to be met.

        Returns False when the transaction was already visible.
        """
        if self.includes(txn):
            return False
        if not self.dependencies_met(txn):
            raise CausalityViolation(
                f"{txn.dot}: snapshot {txn.snapshot} not covered by"
                f" frontier {self.vector}")
        self._dots.add(txn.dot)
        self._dots_view = None
        self._txns[txn.dot] = txn
        if not txn.commit.is_symbolic:
            self.vector = self.vector.merge(
                txn.commit.as_vector(txn.snapshot.vector))
        self.fingerprint += 1
        return True

    def resolve_commit(self, txn: Transaction) -> None:
        """A previously symbolic commit got its concrete stamp: merge it."""
        if txn.dot in self._dots and not txn.commit.is_symbolic:
            merged = self.vector.merge(
                txn.commit.as_vector(txn.snapshot.vector))
            if merged != self.vector:
                self.vector = merged
            self.fingerprint += 1

    def advance_vector(self, vector: VectorClock) -> None:
        """Merge externally learned progress (e.g. the connected DC's)."""
        merged = self.vector.merge(vector)
        if merged != self.vector:
            self.vector = merged
            self.fingerprint += 1

    # -- journal filtering -----------------------------------------------------
    def entry_filter(self) -> Callable[[JournalEntry], bool]:
        """Filter exposing exactly the admitted journal entries."""
        def visible(entry: JournalEntry) -> bool:
            return (entry.dot in self._dots
                    or entry.txn.commit.included_in(self.vector))
        return visible

    def read_token(self) -> Tuple[str, int, int]:
        """Hashable frontier descriptor for materialisation caches.

        Two equal tokens from the same ``VisibleState`` guarantee the
        same visible set, without evaluating any per-entry callback.
        """
        return ("vs", id(self), self.fingerprint)

    @property
    def dots(self) -> FrozenSet[Dot]:
        """Admitted dots (read-only view; rebuilt only after admission)."""
        if self._dots_view is None:
            self._dots_view = frozenset(self._dots)
        return self._dots_view

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VisibleState({self.vector}, dots={len(self._dots)})"


class CausalityViolation(Exception):
    """An update was admitted before its dependencies (a bug if raised)."""


def admissible(txn: Transaction, state: VisibleState,
               checks: Iterable[AdmissionCheck] = ()) -> bool:
    """Full admission test: causal dependencies plus extra gates."""
    if not state.dependencies_met(txn):
        return False
    return all(check(txn) for check in checks)


def admit_ready(pending: List[Transaction], state: VisibleState,
                checks: Iterable[AdmissionCheck] = (),
                failed_at: Optional[Dict[Dot, int]] = None) \
        -> List[Transaction]:
    """Admit every pending transaction whose gates pass, to fixpoint.

    Admitting one transaction can unlock another (its causal child), so we
    iterate until no progress.  Returns the transactions admitted, in
    admission order; ``pending`` is left holding the rest.

    A transaction that failed admission is not re-tested until the
    frontier fingerprint moves past the value at which it failed — the
    fixpoint rescans then cost a dict lookup per still-blocked
    transaction instead of a full dependency check.  Pass ``failed_at``
    (a dot -> fingerprint map, mutated in place) to carry that memo
    across calls; by default it lives only within one call.
    """
    admitted: List[Transaction] = []
    checks = tuple(checks)
    if failed_at is None:
        failed_at = {}
    progress = True
    while progress:
        progress = False
        remaining: List[Transaction] = []
        for txn in pending:
            if state.includes(txn):
                failed_at.pop(txn.dot, None)
                progress = True
                continue
            if failed_at.get(txn.dot) == state.fingerprint:
                remaining.append(txn)
                continue
            if admissible(txn, state, checks):
                state.admit(txn)
                failed_at.pop(txn.dot, None)
                admitted.append(txn)
                progress = True
            else:
                failed_at[txn.dot] = state.fingerprint
                remaining.append(txn)
        pending[:] = remaining
    return admitted
