"""Transaction dots: unique identifiers with a total arbitration order.

A *dot* (paper sections 3.4-3.5, after Almeida et al.) uniquely identifies a
transaction and arbitrates between concurrent ones.  We realise it as
``(counter, origin)`` where ``counter`` comes from the origin node's Lamport
clock, so the total order on dots linearly extends happened-before.

``DotTracker`` implements the duplicate-suppression rule of section 3.8:
"every node keeps track of the highest dot assigned by another node, and
ignores a transaction whose dot is less or equal this value".  Because each
node assigns counters sequentially and (re)transmits its transactions in
order, a per-origin high-watermark suffices; we also keep an exact set for
out-of-order deliveries injected by tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Set, Tuple


@dataclass(frozen=True, order=True)
class Dot:
    """Globally unique transaction id; tuple order = arbitration order."""

    counter: int
    origin: str

    def as_tuple(self) -> Tuple[int, str]:
        return (self.counter, self.origin)

    def to_dict(self) -> Dict[str, Any]:
        return {"counter": self.counter, "origin": self.origin}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Dot":
        return cls(data["counter"], data["origin"])

    def __repr__(self) -> str:
        return f"{self.origin}@{self.counter}"


class DotTracker:
    """Tracks delivered dots to filter duplicates.

    Compact in the common case (contiguous per-origin watermark) while
    remaining correct for gaps: dots above the watermark are kept in an
    explicit set until the gap below them closes.
    """

    def __init__(self) -> None:
        self._watermark: Dict[str, int] = {}
        self._pending: Dict[str, Set[int]] = {}

    def seen(self, dot: Dot) -> bool:
        """Has this dot already been delivered?"""
        if dot.counter <= self._watermark.get(dot.origin, 0):
            return True
        return dot.counter in self._pending.get(dot.origin, ())

    def observe(self, dot: Dot) -> bool:
        """Record a delivery.  Returns False if it was a duplicate."""
        if self.seen(dot):
            return False
        pending = self._pending.setdefault(dot.origin, set())
        pending.add(dot.counter)
        # Close contiguous gaps above the watermark.
        mark = self._watermark.get(dot.origin, 0)
        while mark + 1 in pending:
            mark += 1
            pending.remove(mark)
        if mark != self._watermark.get(dot.origin, 0):
            self._watermark[dot.origin] = mark
        if not pending:
            self._pending.pop(dot.origin, None)
        return True

    def watermark(self, origin: str) -> int:
        return self._watermark.get(origin, 0)

    def observed_dots(self) -> Set[Dot]:
        """All dots recorded (watermarks expanded); test/debug helper."""
        out: Set[Dot] = set()
        for origin, mark in self._watermark.items():
            out.update(Dot(i, origin) for i in range(1, mark + 1))
        for origin, pending in self._pending.items():
            out.update(Dot(i, origin) for i in pending)
        return out

    def merge(self, dots: Iterable[Dot]) -> None:
        for dot in dots:
            self.observe(dot)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DotTracker(watermark={self._watermark},"
                f" pending={self._pending})")
