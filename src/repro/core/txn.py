"""Transaction records and their consistency metadata.

Per paper section 3.5 a transaction ``T`` carries:

* a *snapshot vector* ``T.S`` naming the DC-committed transactions it read
  from, plus — at the edge — the dots of local transactions whose commit
  vectors are still symbolic (the ``[alpha, beta, gamma]`` placeholders of
  section 3.7);
* a *commit stamp* ``T.C``: symbolic until some DC assigns a concrete
  timestamp; after migration it may hold up to N equivalent entries, one per
  DC that accepted the transaction, stored sparsely (section 3.8);
* a unique *dot* ``T.D`` arbitrating concurrent transactions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..crdt.base import Operation
from .clock import VectorClock
from .dot import Dot


@dataclass(frozen=True)
class ObjectKey:
    """Names a CRDT object: a bucket (namespace) and a key within it."""

    bucket: str
    key: str

    def to_dict(self) -> Dict[str, str]:
        return {"bucket": self.bucket, "key": self.key}

    @classmethod
    def from_dict(cls, data: Dict[str, str]) -> "ObjectKey":
        return cls(data["bucket"], data["key"])

    def __repr__(self) -> str:
        return f"{self.bucket}/{self.key}"


class Snapshot:
    """A causally closed read point: DC vector + unacknowledged local dots.

    ``vector`` bounds the DC-committed transactions included; ``local_deps``
    are edge-local transactions included by dot because their commit vectors
    are still symbolic.  The pair realises read-my-writes (section 3.8).
    """

    __slots__ = ("vector", "local_deps")

    def __init__(self, vector: VectorClock,
                 local_deps: Iterable[Dot] = ()):
        self.vector = vector
        self.local_deps: FrozenSet[Dot] = frozenset(local_deps)

    def satisfied_by(self, state_vector: VectorClock,
                     known_dots) -> bool:
        """Can a node with this state serve every read of the snapshot?

        ``known_dots`` is anything supporting ``seen(dot)`` (a DotTracker)
        or ``__contains__``.
        """
        if not self.vector.leq(state_vector):
            return False
        if not self.local_deps:
            return True
        if hasattr(known_dots, "seen"):
            return all(known_dots.seen(d) for d in self.local_deps)
        return all(d in known_dots for d in self.local_deps)

    def to_dict(self) -> Dict[str, Any]:
        return {"vector": self.vector.to_dict(),
                "local_deps": [d.to_dict() for d in sorted(self.local_deps)]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Snapshot":
        return cls(VectorClock(data["vector"]),
                   [Dot.from_dict(d) for d in data["local_deps"]])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Snapshot):
            return NotImplemented
        return (self.vector == other.vector
                and self.local_deps == other.local_deps)

    def __hash__(self) -> int:
        return hash((self.vector, self.local_deps))

    def __repr__(self) -> str:
        if self.local_deps:
            return f"Snap({self.vector} +{sorted(self.local_deps)})"
        return f"Snap({self.vector})"


class CommitStamp:
    """Commit timestamp; symbolic until at least one DC accepts the txn.

    ``entries`` maps each accepting DC to the timestamp it assigned.  All
    entries denote the *same* point of the causal order (the paper declares
    them equivalent); storing only significant components realises the
    memory optimisation of section 3.8.
    """

    __slots__ = ("entries",)

    def __init__(self, entries: Optional[Dict[str, int]] = None):
        self.entries: Dict[str, int] = dict(entries or {})

    @property
    def is_symbolic(self) -> bool:
        return not self.entries

    def add_entry(self, dc_id: str, timestamp: int) -> None:
        existing = self.entries.get(dc_id)
        if existing is not None and existing != timestamp:
            raise ValueError(
                f"DC {dc_id} already assigned timestamp {existing}")
        self.entries[dc_id] = timestamp

    def included_in(self, state_vector: VectorClock) -> bool:
        """True when any equivalent entry is covered by ``state_vector``."""
        return any(state_vector[dc] >= ts
                   for dc, ts in self.entries.items())

    def as_vector(self, snapshot_vector: VectorClock) -> VectorClock:
        """Full commit vector: the snapshot advanced at the accepting DCs."""
        vector = snapshot_vector
        for dc, ts in self.entries.items():
            if ts > vector[dc]:
                vector = vector.advance(dc, ts)
        return vector

    def to_dict(self) -> Dict[str, Any]:
        return {"entries": dict(self.entries)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CommitStamp":
        return cls(data["entries"])

    def copy(self) -> "CommitStamp":
        return CommitStamp(self.entries)

    def __repr__(self) -> str:
        if self.is_symbolic:
            return "Commit(symbolic)"
        inner = ", ".join(f"{k}:{v}" for k, v in sorted(self.entries.items()))
        return f"Commit({inner})"


@dataclass
class WriteOp:
    """One CRDT update within a transaction."""

    key: ObjectKey
    op: Operation

    def to_dict(self) -> Dict[str, Any]:
        return {"key": self.key.to_dict(), "op": self.op.to_dict()}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "WriteOp":
        return cls(ObjectKey.from_dict(data["key"]),
                   Operation.from_dict(data["op"]))


@dataclass
class Transaction:
    """A committed update transaction travelling through the system."""

    dot: Dot
    origin: str
    snapshot: Snapshot
    commit: CommitStamp
    writes: List[WriteOp] = field(default_factory=list)
    issuer: Optional[str] = None  # user identity, for ACL checks

    def tag_for(self, index: int) -> Tuple[int, str, int]:
        """Arbitration tag for the ``index``-th write (dot + position)."""
        return (self.dot.counter, self.dot.origin, index)

    def tagged_writes(self) -> List[WriteOp]:
        """Writes with their operations tagged for CRDT application."""
        return [WriteOp(w.key, w.op.with_tag(self.tag_for(i)))
                for i, w in enumerate(self.writes)]

    @property
    def keys(self) -> List[ObjectKey]:
        return [w.key for w in self.writes]

    def touches(self, key: ObjectKey) -> bool:
        return any(w.key == key for w in self.writes)

    def conflicts_with(self, other: "Transaction") -> bool:
        """Write-write interference, used by EPaxos and PSI commit."""
        mine = {w.key for w in self.writes}
        return any(w.key in mine for w in other.writes)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "dot": self.dot.to_dict(),
            "origin": self.origin,
            "snapshot": self.snapshot.to_dict(),
            "commit": self.commit.to_dict(),
            "writes": [w.to_dict() for w in self.writes],
            "issuer": self.issuer,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Transaction":
        return cls(
            dot=Dot.from_dict(data["dot"]),
            origin=data["origin"],
            snapshot=Snapshot.from_dict(data["snapshot"]),
            commit=CommitStamp.from_dict(data["commit"]),
            writes=[WriteOp.from_dict(w) for w in data["writes"]],
            issuer=data.get("issuer"),
        )

    def byte_size(self) -> int:
        """Rough wire-size estimate for metadata-overhead benchmarks."""
        size = 16  # dot
        size += 8 * len(self.snapshot.vector)
        size += 16 * len(self.snapshot.local_deps)
        size += 8 * max(1, len(self.commit.entries))
        for write in self.writes:
            size += len(repr(write.key)) + len(repr(write.op.payload))
        return size

    def __repr__(self) -> str:
        return (f"Txn({self.dot} S={self.snapshot}"
                f" C={self.commit} |w|={len(self.writes)})")
