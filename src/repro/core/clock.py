"""Vector timestamps sized by the number of data centres.

Colony bounds causal metadata by treating each DC as one sequential process
(an SI zone): a vector with one 8-byte entry per DC suffices to name a point
in the inter-DC causal order (paper sections 3.3-3.4).  Component ``V[i]``
counts the transactions committed at DC ``i``.

``VectorClock`` is an immutable mapping from DC identifier to a monotonic
integer; absent entries read as zero, so clocks over different DC sets
compare sensibly (a freshly added DC starts at zero).

``LamportClock`` backs transaction *dots*: a scalar clock merged on every
receive, so that dot order is a linear extension of happened-before.  That
is exactly what the paper's arbitration relation requires (CC invariant:
happened-before is contained in arbitration), and it lets the journal apply
updates sorted by dot.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, Mapping, Optional


class VectorClock(Mapping[Any, int]):
    """Immutable vector timestamp keyed by DC id; missing entries are 0."""

    __slots__ = ("_entries",)

    def __init__(self, entries: Optional[Mapping[Any, int]] = None):
        if entries:
            self._entries: Dict[Any, int] = {
                k: int(v) for k, v in entries.items() if v}
        else:
            self._entries = {}

    @classmethod
    def _wrap(cls, entries: Dict[Any, int]) -> "VectorClock":
        """Adopt ``entries`` without re-validating (internal fast path).

        Callers must guarantee the invariant the public constructor
        enforces: int values, no zero entries, ownership of the dict.
        """
        clock = cls.__new__(cls)
        clock._entries = entries
        return clock

    # -- Mapping interface ---------------------------------------------------
    def __getitem__(self, key: Any) -> int:
        return self._entries.get(key, 0)

    def get(self, key: Any, default: int = 0) -> int:
        return self._entries.get(key, default)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    # -- lattice operations ----------------------------------------------------
    def merge(self, other: "VectorClock") -> "VectorClock":
        """Least upper bound: component-wise maximum (paper section 3.4)."""
        merged = dict(self._entries)
        for key, val in other._entries.items():
            if val > merged.get(key, 0):
                merged[key] = val
        return VectorClock._wrap(merged)

    def advance(self, key: Any, value: Optional[int] = None) -> "VectorClock":
        """Copy with ``key`` advanced to ``value`` (default: +1)."""
        new_value = self[key] + 1 if value is None else int(value)
        if new_value < self[key]:
            raise ValueError(
                f"clock entry {key!r} may not move backwards"
                f" ({self[key]} -> {new_value})")
        entries = dict(self._entries)
        if new_value:
            entries[key] = new_value
        return VectorClock._wrap(entries)

    # Memo tables for the wire-vector fast paths below.  A stability
    # push fans the *same* raw dict out to every session of a DC, so a
    # handful of raw dicts (one per in-flight round per DC) account for
    # nearly every call.  Keyed by ``id(raw)``: the stored strong
    # reference to ``raw`` keeps the id stable, and the ``is`` check
    # re-verifies it.  Capped tiny; cleared wholesale when full.
    #
    # The crucial case is *stragglers*: per-link jitter spreads one
    # round's deliveries across many round intervals, so the receiving
    # edges sit at many different (older) frontiers of the same DC's
    # stable history.  Every such frontier is dominated by the incoming
    # round's vector, so the merge result is the same *canonical* clock
    # of ``raw`` for all of them — one dominance scan serves any
    # straggler, and edges converge onto the canonical instance, which
    # turns the scan into an identity hit.  Value-equal inputs give
    # value-equal outputs, so serving a shared result is safe: clocks
    # are immutable and already shared freely.
    _merge_memo: Dict[int, tuple] = {}
    #   id(raw) -> (raw, canon, last_mine, last_result)
    _dominates_memo: Dict[int, tuple] = {}  # id(raw) -> (raw, mine, bool)
    #: Link jitter keeps every round currently in flight live in the
    #: memo at once (tens of rounds per DC); the cap only bounds memory
    #: for degenerate workloads, so it must comfortably exceed that
    #: in-flight population or eviction thrashes the tables.
    _MEMO_CAP = 512

    def merge_dict(self, raw: Mapping[Any, int]) -> "VectorClock":
        """Merge with a raw wire mapping, without wrapping it first.

        Equivalent to ``self.merge(VectorClock(raw))`` but skips the
        intermediate clock, and returns ``self`` itself when nothing
        advances — clocks are immutable, so sharing is safe (the same
        contract ``from_delta`` relies on).  This is the edge's
        per-push hot path: most stability pushes advance nothing or a
        single component.
        """
        mine = self._entries
        memo = VectorClock._merge_memo
        entry = memo.get(id(raw))
        if entry is not None and entry[0] is raw:
            canon = entry[1]
            ce = canon._entries
            if mine is ce:
                return canon        # already at this round's frontier
            covered = True
            for key, val in mine.items():
                if val > ce.get(key, 0):
                    covered = False
                    break
            if covered:
                # ``raw`` dominates us (a straggler catching up): the
                # merge *is* the canonical clock of ``raw``.
                return canon
            seen = entry[2]
            if seen is mine or seen == mine:
                return entry[3]
        updates: Optional[Dict[Any, int]] = None
        for key, val in raw.items():
            if val > mine.get(key, 0):
                if updates is None:
                    updates = {}
                updates[key] = int(val)
        if updates is None:
            result = self
        else:
            merged = dict(mine)
            merged.update(updates)
            result = VectorClock._wrap(merged)
        if entry is not None and entry[0] is raw:
            memo[id(raw)] = (raw, entry[1], mine, result)
        else:
            if len(memo) >= VectorClock._MEMO_CAP:
                memo.clear()
            memo[id(raw)] = (raw, VectorClock(raw), mine, result)
        return result

    def dominates_dict(self, raw: Mapping[Any, int]) -> bool:
        """True when a raw wire mapping is <= this clock component-wise.

        Equivalent to ``VectorClock(raw).leq(self)`` without building
        the temporary clock (zero entries in ``raw`` never dominate).
        """
        mine = self._entries
        memo = VectorClock._dominates_memo
        entry = memo.get(id(raw))
        if entry is not None and entry[0] is raw:
            seen = entry[1]
            if seen is mine or seen == mine:
                return entry[2]
        result = True
        for key, val in raw.items():
            if val > mine.get(key, 0):
                result = False
                break
        if len(memo) >= VectorClock._MEMO_CAP:
            memo.clear()
        memo[id(raw)] = (raw, mine, result)
        return result

    def leq(self, other: "VectorClock") -> bool:
        """True when this clock is <= other component-wise."""
        theirs = other._entries
        for key, val in self._entries.items():
            if val > theirs.get(key, 0):
                return False
        return True

    def lt(self, other: "VectorClock") -> bool:
        return self.leq(other) and self != other

    def concurrent(self, other: "VectorClock") -> bool:
        return not self.leq(other) and not other.leq(self)

    def dominates(self, other: "VectorClock") -> bool:
        return other.leq(self)

    # -- delta encoding --------------------------------------------------------
    def delta_from(self, base: "VectorClock") -> Dict[Any, int]:
        """Sparse encoding of this clock against ``base``.

        Returns only the entries that differ from ``base``; an entry the
        base carries but this clock lacks is encoded as an explicit zero
        (the constructor strips zeros, so absence alone cannot express
        "went back to nothing" relative to a base).  Batched replication
        frames use this to ship per-transaction snapshot vectors as a
        handful of bytes against the link's last-acknowledged frontier.
        """
        delta = {k: v for k, v in self._entries.items() if base[k] != v}
        for k in base:
            if k not in self._entries:
                delta[k] = 0
        return delta

    @classmethod
    def from_delta(cls, base: "VectorClock",
                   delta: Mapping[Any, int]) -> "VectorClock":
        """Reconstruct the clock that ``delta_from(base)`` encoded.

        An empty delta returns ``base`` itself — clocks are immutable,
        so sharing is safe, and chained batch decoding hits this path
        for every entry whose snapshot equals its predecessor's.
        """
        if not delta:
            return base
        entries = dict(base._entries)
        entries.update(delta)
        return cls(entries)

    # -- misc -----------------------------------------------------------------
    def byte_size(self, entry_bytes: int = 8) -> int:
        """Wire size estimate; the paper uses 8 bytes per component."""
        return entry_bytes * len(self._entries)

    def to_dict(self) -> Dict[Any, int]:
        return dict(self._entries)

    @classmethod
    def zero(cls) -> "VectorClock":
        return cls()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return self._entries == other._entries

    def __hash__(self) -> int:
        return hash(frozenset(self._entries.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}:{v}" for k, v in sorted(
            self._entries.items(), key=lambda kv: repr(kv[0])))
        return f"VC[{inner}]"


def lub(clocks: Iterable[VectorClock]) -> VectorClock:
    """Least upper bound of any number of clocks."""
    result = VectorClock.zero()
    for clock in clocks:
        result = result.merge(clock)
    return result


class LamportClock:
    """Scalar logical clock used to assign dot counters.

    ``tick`` produces a fresh local timestamp; ``observe`` merges a remote
    timestamp so that subsequent local events order after it.  This makes
    dot order consistent with happened-before.
    """

    __slots__ = ("_time",)

    def __init__(self, start: int = 0):
        self._time = int(start)

    def tick(self) -> int:
        self._time += 1
        return self._time

    def observe(self, remote_time: int) -> None:
        if remote_time > self._time:
            self._time = remote_time

    @property
    def time(self) -> int:
        return self._time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LamportClock({self._time})"
