"""Benchmark scenarios: one function per paper figure, plus ablations.

Each function builds a deterministic simulation, drives the ColonyChat
workload, and returns plain data (series of points / summary rows) that the
``benchmarks/`` suite prints and shape-checks against the paper's claims.
Parameters default to scaled-down sizes so a full run stays fast; the paper
scale is reachable by passing larger values.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..api.client import Connection
from ..chat.app import ChatApp
from ..edge.node import EdgeNode
from ..groups.peergroup import GroupMember
from ..sim.network import CELLULAR, LAN
from ..workload.driver import ClosedLoopDriver
from ..workload.trace import MattermostTrace, TraceConfig
from .harness import Deployment, DeploymentConfig
from .metrics import (TimelinePoint, summarise, throughput,
                      timeline)


# ---------------------------------------------------------------------------
# Figure 4: throughput vs response time, 6 configurations
# ---------------------------------------------------------------------------

@dataclass
class Fig4Point:
    mode: str
    n_dcs: int
    n_clients: int
    throughput_tps: float
    mean_latency_ms: float
    p99_latency_ms: float


def _small_trace(n_users: int, seed: int,
                 n_workspaces: int = 1,
                 channels: int = 10) -> MattermostTrace:
    return MattermostTrace(TraceConfig(
        n_users=n_users, n_workspaces=n_workspaces,
        channels_per_workspace=channels,
        big_workspace_users=n_users, seed=seed))


def fig4_point(mode: str, n_dcs: int, n_clients: int,
               measure_ms: float = 4000.0, warm_ms: float = 2000.0,
               think_time_ms: float = 10.0, seed: int = 7) -> Fig4Point:
    """One point of the throughput/latency curve for one configuration."""
    trace = _small_trace(n_clients, seed)
    config = DeploymentConfig(mode=mode, n_dcs=n_dcs,
                              n_clients=n_clients, seed=seed)
    deployment = Deployment(config, trace)
    deployment.warm_up(warm_ms)
    driver = ClosedLoopDriver(deployment.sim, trace,
                              [(u, a) for u, _n, a
                               in deployment.clients],
                              think_time_ms=think_time_ms)
    driver.start()
    start = deployment.sim.now
    deployment.sim.run_for(measure_ms)
    end = deployment.sim.now
    stats = deployment.all_stats()
    summary = summarise(stats, since=start, until=end)
    tput = throughput(stats, start, end)
    return Fig4Point(mode, n_dcs, n_clients, tput,
                     summary.mean_ms, summary.p99_ms)


def fig4_curve(mode: str, n_dcs: int,
               client_ladder: Tuple[int, ...] = (4, 8, 16, 32),
               **kwargs) -> List[Fig4Point]:
    return [fig4_point(mode, n_dcs, n, **kwargs) for n in client_ladder]


# ---------------------------------------------------------------------------
# Figures 5-7 share a topology: one DC, a peer group, solo edge users
# ---------------------------------------------------------------------------

@dataclass
class TimelineResult:
    """Latency timeline split by population, plus phase boundaries."""

    points: Dict[str, List[TimelinePoint]]
    disconnect_at_ms: float
    reconnect_at_ms: float
    duration_ms: float


class _Fig567World:
    """One workspace, 36 users: 12 in a peer group, 24 independent."""

    def __init__(self, n_group: int = 12, n_solo: int = 24,
                 seed: int = 11, cache_coverage: float = 0.9):
        self.trace = _small_trace(n_group + n_solo, seed,
                                  channels=12)
        config = DeploymentConfig(mode="colony", n_dcs=1,
                                  n_clients=n_group, group_size=n_group,
                                  cache_coverage=cache_coverage, seed=seed)
        self.deployment = Deployment(config, self.trace)
        self.sim = self.deployment.sim
        self.group = self.deployment.groups[0]
        # Independent (SwiftCloud-style) users share the workspace.
        rng = random.Random(seed * 131)
        self.solo: List[Tuple[str, EdgeNode, ChatApp]] = []
        for user in self.trace.users[n_group:n_group + n_solo]:
            node_id = f"solo/{user}"
            node = self.sim.spawn(EdgeNode, node_id, dc_id="dc0",
                                  user=user)
            self.sim.network.set_link(node_id, "dc0", CELLULAR)
            app = ChatApp(Connection(node), user)
            for workspace in self.trace.user_workspaces[user]:
                keep = [c for c in self.trace.channels[workspace]
                        if rng.random() < cache_coverage]
                app.open_workspace(workspace, keep)
            node.connect()
            self.solo.append((user, node, app))

    def all_apps(self) -> List[Tuple[str, ChatApp]]:
        return ([(u, a) for u, _n, a in self.deployment.clients]
                + [(u, a) for u, _n, a in self.solo])

    def run_workload(self, duration_ms: float,
                     think_time_ms: float = 150.0) -> ClosedLoopDriver:
        driver = ClosedLoopDriver(self.sim, self.trace, self.all_apps(),
                                  think_time_ms=think_time_ms)
        driver.start()
        self.sim.run_for(duration_ms)
        return driver


def _shifted(stats, t0: float) -> List[TimelinePoint]:
    """Timeline with t=0 at the workload start (after warm-up)."""
    return [TimelinePoint(p.at_ms - t0, p.latency_ms, p.served_by)
            for p in timeline(stats) if p.at_ms >= t0]


def fig5_dc_disconnection(duration_ms: float = 70_000.0,
                          disconnect_at: float = 25_000.0,
                          reconnect_at: float = 45_000.0,
                          seed: int = 11) -> TimelineResult:
    """The peer group's sync point loses (then regains) its DC link."""
    world = _Fig567World(seed=seed)
    world.deployment.warm_up(2000.0)
    sim = world.sim
    t0 = sim.now
    parent = world.group[0]
    sim.loop.schedule(disconnect_at,
                      lambda: sim.network.partition(parent.node_id, "dc0"))
    sim.loop.schedule(reconnect_at,
                      lambda: sim.network.heal(parent.node_id, "dc0"))
    world.run_workload(duration_ms)
    group_stats = [s for _u, n, _a in world.deployment.clients
                   for s in n.txn_stats]
    solo_stats = [s for _u, n, _a in world.solo for s in n.txn_stats]
    return TimelineResult(
        points={"group": _shifted(group_stats, t0),
                "solo": _shifted(solo_stats, t0)},
        disconnect_at_ms=disconnect_at, reconnect_at_ms=reconnect_at,
        duration_ms=duration_ms)


def fig6_peer_disconnection(duration_ms: float = 70_000.0,
                            disconnect_at: float = 25_000.0,
                            reconnect_at: float = 45_000.0,
                            seed: int = 12) -> TimelineResult:
    """One user drops out of its peer group and reconnects 20 s later."""
    world = _Fig567World(seed=seed, cache_coverage=1.0)
    world.deployment.warm_up(2000.0)
    sim = world.sim
    t0 = sim.now
    victim = world.group[-1]

    def cut() -> None:
        victim.disconnect_from_group()
        for other in world.group:
            if other is not victim:
                sim.network.partition(victim.node_id, other.node_id)

    def heal() -> None:
        for other in world.group:
            if other is not victim:
                sim.network.heal(victim.node_id, other.node_id)
        victim.reconnect_to_group()

    sim.loop.schedule(disconnect_at, cut)
    sim.loop.schedule(reconnect_at, heal)
    world.run_workload(duration_ms)
    victim_stats = list(victim.txn_stats)
    rest_stats = [s for _u, n, _a in world.deployment.clients
                  if n is not victim for s in n.txn_stats]
    return TimelineResult(
        points={"victim": _shifted(victim_stats, t0),
                "group": _shifted(rest_stats, t0)},
        disconnect_at_ms=disconnect_at, reconnect_at_ms=reconnect_at,
        duration_ms=duration_ms)


def fig7_migration(duration_ms: float = 70_000.0,
                   join_at: float = 45_000.0,
                   seed: int = 13) -> TimelineResult:
    """A mobile client with an invalid cache joins the peer group."""
    world = _Fig567World(seed=seed)
    world.deployment.warm_up(2000.0)
    sim = world.sim
    t0 = sim.now
    group = world.group
    parent = group[0]
    # The migrating client: same workspace, completely cold cache.
    user = world.trace.users[-1]
    node = sim.spawn(GroupMember, f"mobile/{user}", dc_id="dc0",
                     group_id=parent.group_id, parent_id=parent.node_id,
                     user=user)
    app = ChatApp(Connection(node), user)
    for member in group:
        sim.network.set_link(node.node_id, member.node_id, LAN)
    sim.loop.schedule(join_at, node.join_group)

    driver = ClosedLoopDriver(sim, world.trace, world.all_apps(),
                              think_time_ms=150.0)
    driver.start()
    # The mobile client only starts transacting once in the group.
    mobile_driver = ClosedLoopDriver(sim, world.trace, [(user, app)],
                                     think_time_ms=150.0)
    sim.loop.schedule(join_at + 50.0, mobile_driver.start)
    sim.run_for(duration_ms)

    group_stats = [s for _u, n, _a in world.deployment.clients
                   for s in n.txn_stats]
    return TimelineResult(
        points={"mobile": _shifted(node.txn_stats, t0),
                "group": _shifted(group_stats, t0)},
        disconnect_at_ms=join_at, reconnect_at_ms=join_at,
        duration_ms=duration_ms)


# ---------------------------------------------------------------------------
# Ablation A1: the K-stability trade-off (section 3.8)
# ---------------------------------------------------------------------------

@dataclass
class KStabilityRow:
    k: int
    visibility_lag_ms: float        # commit -> remote-edge visibility
    migration_rejections: int       # incompatible sessions on migration


def ablation_kstability(k: int, n_dcs: int = 3, updates: int = 30,
                        migrations: int = 6, seed: int = 21) \
        -> KStabilityRow:
    """Measure edge-visibility lag and migration compatibility vs K.

    Topology stresses the paper's trade-off (section 3.8): the edge links
    are fast (the client is well connected), dc0-dc1 are close (10 ms) and
    dc2 is far (60 ms).  Low K makes updates visible quickly but lets the
    client run ahead of the DC it migrates to (incompatible sessions);
    K = N gates visibility on the slowest DC.
    """
    from ..core.txn import ObjectKey
    from ..dc.datacenter import DataCenter
    from ..sim.network import ETHERNET, LatencyModel
    from ..sim.runtime import Simulation

    far = LatencyModel(60.0, 2.0)
    sim = Simulation(seed=seed, default_latency=LAN)
    dc_ids = [f"dc{i}" for i in range(n_dcs)]
    dcs = [sim.spawn(DataCenter, d,
                     peer_dcs=[x for x in dc_ids if x != d],
                     n_shards=1, k_target=k) for d in dc_ids]
    for a_i, a in enumerate(dc_ids):
        for b_i, b in enumerate(dc_ids):
            if a < b:
                slow = a_i >= 2 or b_i >= 2
                sim.network.set_link(a, b, far if slow else ETHERNET)
    key = ObjectKey("bench", "counter")
    writer = sim.spawn(EdgeNode, "writer", dc_id="dc0")
    reader = sim.spawn(EdgeNode, "reader", dc_id="dc0")
    for node in (writer, reader):
        node.declare_interest(key, "counter")
        node.connect()
    sim.run_for(1000.0)

    lags: List[float] = []
    expected = 0

    def one_update(index: int) -> None:
        def body(tx):
            yield tx.update(key, "counter", "increment", 1)
        writer.run_transaction(body)

    for index in range(updates):
        sim.loop.schedule(index * 400.0, lambda i=index: one_update(i))
    # Sample visibility lag: poll the reader for each new value.
    commit_times: Dict[int, float] = {}
    seen_times: Dict[int, float] = {}

    def poll() -> None:
        value = reader.read_value(key, "counter")
        if value and value not in seen_times:
            seen_times[value] = sim.now

    def record_commit() -> None:
        value = writer.read_value(key, "counter")
        if value and value not in commit_times:
            commit_times[value] = sim.now

    for t in range(0, int(updates * 400.0 + 4000.0), 2):
        sim.loop.schedule(float(t), poll)
        sim.loop.schedule(float(t), record_commit)
    sim.run_for(updates * 400.0 + 4000.0)
    for value, seen in seen_times.items():
        if value in commit_times:
            lags.append(seen - commit_times[value])

    # Migration probe: hop the writer between the two close DCs right
    # after committing, and count causally-incompatible session
    # rejections (the writer's K-stable knowledge from the old DC may be
    # ahead of the new DC when K is low).
    rejections_before = sum(dc.stats["rejected"] for dc in dcs)
    hop_targets = [dc_ids[(i + 1) % 2] for i in range(migrations)]

    def hop(target: str) -> None:
        def body(tx):
            yield tx.update(key, "counter", "increment", 1)
        writer.run_transaction(body)
        # Migrate just after the fresh update becomes K-stable at the old
        # DC and is pushed back — the window where, for low K, the writer
        # knows more than the new DC does.
        sim.loop.schedule(1.5, lambda: writer.migrate_to(target))

    for index, target in enumerate(hop_targets):
        sim.loop.schedule(index * 120.0, lambda t=target: hop(t))
    sim.run_for(migrations * 120.0 + 4000.0)
    rejections = sum(dc.stats["rejected"] for dc in dcs) \
        - rejections_before
    lag = sum(lags) / len(lags) if lags else float("nan")
    return KStabilityRow(k, lag, rejections)


# ---------------------------------------------------------------------------
# Ablation A2: commit variants (section 5.1.4)
# ---------------------------------------------------------------------------

@dataclass
class CommitVariantRow:
    variant: str
    mean_commit_latency_ms: float
    aborts: int
    commits: int
    p50_commit_latency_ms: float = float("nan")
    fast_commits: int = 0
    fallbacks: int = 0
    fast_path_ratio: float = 0.0
    digest: str = ""


def commit_workload(bench, txns_per_member: int = 20,
                    conflict_rate: float = 1.0,
                    seed: int = 23) -> CommitVariantRow:
    """Drive the standard commit workload over a built group bench.

    Each member commits ``txns_per_member`` counter updates, all members
    firing in the same instant each round so conflicting transactions
    are genuinely concurrent; ``conflict_rate`` picks the shared hot key
    over the member's private key.  The row carries latency summaries,
    the tiga fast-path counters (zero for the other variants), and the
    converged state digest — equal digests across variants prove the
    fast path changes *when* transactions commit, never *what* they
    compute.
    """
    from .metrics import percentile

    sim = bench.sim
    members = bench.members
    rng = random.Random(seed)
    for member_index, member in enumerate(members):
        for txn_index in range(txns_per_member):
            if rng.random() < conflict_rate:
                key = bench.hot
            else:
                key = bench.cold_keys[member_index]

            def body(tx, k=key):
                yield tx.update(k, "counter", "increment", 1)
            sim.loop.schedule(
                txn_index * 50.0,
                (lambda m=member, b=body: m.run_transaction(b)))
    sim.run_for(txns_per_member * 50.0 + 5000.0)

    stats = [s for m in members for s in m.txn_stats
             if not s.read_only]
    commits = [s for s in stats if not s.aborted]
    aborts = [s for s in stats if s.aborted]
    latencies = sorted(s.latency for s in commits)
    mean = (sum(latencies) / len(latencies)
            if latencies else float("nan"))
    tiga = {"fast_commits": 0, "fallbacks": 0}
    for member in members:
        for field, count in member.tiga_stats.items():
            if field in tiga:
                tiga[field] += count
    keys = [bench.hot] + list(bench.cold_keys)
    digests = [[(repr(k), state.get(k) or 0) for k in keys]
               for state in
               [m.state_digest() for m in members]
               + [bench.dc.state_digest()]]
    digest = repr(digests[0]) if all(d == digests[0] for d in digests) \
        else "DIVERGED"
    variant = members[0].commit_variant
    return CommitVariantRow(
        variant, mean, len(aborts), len(commits),
        p50_commit_latency_ms=percentile(latencies, 50.0),
        fast_commits=tiga["fast_commits"],
        fallbacks=tiga["fallbacks"],
        fast_path_ratio=(tiga["fast_commits"] / len(commits)
                         if variant == "tiga" and commits else 0.0),
        digest=digest)


def ablation_commit_variant(variant: str, n_members: int = 5,
                            txns_per_member: int = 20,
                            conflict_rate: float = 1.0,
                            seed: int = 23) -> CommitVariantRow:
    """Commit latency and aborts: consensus on vs off the critical path."""
    from .topo import build_group_bench

    bench = build_group_bench(variant, n_members=n_members, seed=seed)
    return commit_workload(bench, txns_per_member=txns_per_member,
                           conflict_rate=conflict_rate, seed=seed)


# ---------------------------------------------------------------------------
# Ablation A3: metadata size (sections 3.3-3.4)
# ---------------------------------------------------------------------------

@dataclass
class MetadataRow:
    n_dcs: int
    n_replicas: int
    colony_vector_bytes: int        # one entry per DC (this design)
    per_replica_vector_bytes: int   # one entry per replica (Depot/PRACTI)


def ablation_metadata(n_dcs: int, n_replicas: int,
                      entry_bytes: int = 8) -> MetadataRow:
    """Vector size: per-DC (Colony) vs per-replica (flat causal) design."""
    return MetadataRow(n_dcs, n_replicas,
                       colony_vector_bytes=entry_bytes * n_dcs,
                       per_replica_vector_bytes=entry_bytes * n_replicas)
