"""Benchmark harness: deployments, metrics, per-figure scenarios."""

from .harness import MODES, Deployment, DeploymentConfig
from .metrics import (LatencySummary, TimelinePoint, bucket_timeline,
                      percentile, served_by_breakdown, summarise,
                      throughput, timeline)
from .scenarios import (CommitVariantRow, Fig4Point, KStabilityRow,
                        MetadataRow, TimelineResult,
                        ablation_commit_variant, ablation_kstability,
                        ablation_metadata, commit_workload, fig4_curve,
                        fig4_point, fig5_dc_disconnection,
                        fig6_peer_disconnection, fig7_migration)
from .topo import GroupBench, build_group_bench

__all__ = [
    "Deployment", "DeploymentConfig", "MODES",
    "LatencySummary", "TimelinePoint", "summarise", "throughput",
    "timeline", "bucket_timeline", "percentile", "served_by_breakdown",
    "Fig4Point", "fig4_point", "fig4_curve",
    "TimelineResult", "fig5_dc_disconnection", "fig6_peer_disconnection",
    "fig7_migration",
    "KStabilityRow", "ablation_kstability",
    "CommitVariantRow", "ablation_commit_variant", "commit_workload",
    "GroupBench", "build_group_bench",
    "MetadataRow", "ablation_metadata",
]
