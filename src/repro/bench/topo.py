"""Shared benchmark topologies: the DC-backed peer group.

Every commit ablation drives the same world — one DC, an n-member peer
group interested in a hot key plus one private key per member — and
used to rebuild it inline.  This module is the single builder; the
``sites`` knob stretches the group across locations (same-site pairs on
LAN, cross-site pairs on ``site_latency``), which is the geo-distributed
shape the deadline fast path is measured on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.txn import ObjectKey
from ..dc.datacenter import DataCenter
from ..groups.peergroup import GroupMember, form_group
from ..sim.network import CELLULAR, LAN, LatencyModel
from ..sim.runtime import Simulation


@dataclass
class GroupBench:
    """A warmed peer-group world, statistics cleared, ready to measure."""

    sim: Simulation
    dc: DataCenter
    members: List[GroupMember]
    hot: ObjectKey
    cold_keys: List[ObjectKey]

    def clear_stats(self) -> None:
        for member in self.members:
            member.txn_stats.clear()


def build_group_bench(variant: str = "async", n_members: int = 5,
                      seed: int = 23, *,
                      sites: Optional[Sequence[int]] = None,
                      site_latency: Optional[LatencyModel] = None,
                      settle_ms: float = 1000.0,
                      warm_ms: float = 2000.0) -> GroupBench:
    """One DC plus an ``n_members`` peer group, formed, warmed, cleared.

    ``sites[i]`` assigns member ``i`` to a location: same-site pairs get
    a LAN link, cross-site pairs get ``site_latency`` (default 15 ms,
    metro-to-metro).  Without ``sites`` every pair is on LAN.
    """
    sim = Simulation(seed=seed, default_latency=CELLULAR)
    dc = sim.spawn(DataCenter, "dc0", peer_dcs=[], n_shards=1,
                   k_target=1)
    hot = ObjectKey("bench", "hot")
    cold_keys = [ObjectKey("bench", f"cold{i}")
                 for i in range(n_members)]
    cross = site_latency or LatencyModel(15.0, 2.0)
    members: List[GroupMember] = []
    for i in range(n_members):
        node = sim.spawn(GroupMember, f"m{i}", dc_id="dc0",
                         group_id="g", parent_id="m0",
                         commit_variant=variant)
        node.declare_interest(hot, "counter")
        for key in cold_keys:
            node.declare_interest(key, "counter")
        members.append(node)
    for a_i, a in enumerate(members):
        for b_i, b in enumerate(members):
            if a.node_id < b.node_id:
                same = sites is None or sites[a_i] == sites[b_i]
                sim.network.set_link(a.node_id, b.node_id,
                                     LAN if same else cross)
    form_group(members)
    sim.run_for(settle_ms)
    # Warm every cache (one touch per key per member), then discard the
    # warm-up statistics: the ablations measure steady-state commits.
    for member in members:
        for key in [hot] + cold_keys:
            def warm_body(tx, k=key):
                value = yield tx.read(k, "counter")
                return value
            member.run_transaction(warm_body)
    sim.run_for(warm_ms)
    bench = GroupBench(sim, dc, members, hot, cold_keys)
    bench.clear_stats()
    return bench
