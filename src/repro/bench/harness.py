"""Deployment harness: build the paper's experimental topologies.

Three system configurations (paper section 7.3):

* ``"antidote"`` — geo-replicated AntidoteDB/Cure: clients have no cache
  and execute every transaction with a round trip to a DC;
* ``"swiftcloud"`` — clients keep a local cache and talk directly to a
  remote DC (no peer groups);
* ``"colony"``   — clients additionally form peer groups with a
  collaborative cache and a sync point.

Latencies follow section 7.2: 0.15 ms inside a cluster/peer group, 10 ms
carrier Ethernet (DC-DC), 50 ms mobile cellular (client-DC).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..api.client import Connection
from ..chat.app import ChatApp
from ..dc.datacenter import DataCenter
from ..edge.cloud_client import CloudClient
from ..edge.node import EdgeNode, TxnStats
from ..groups.peergroup import GroupMember, form_group
from ..sim.network import CELLULAR, ETHERNET, LAN, LatencyModel
from ..sim.runtime import Simulation
from ..workload.trace import MattermostTrace

MODES = ("antidote", "swiftcloud", "colony")


@dataclass
class DeploymentConfig:
    mode: str = "colony"
    n_dcs: int = 1
    n_clients: int = 12
    group_size: int = 12            # colony mode only
    k_target: Optional[int] = None  # default: min(2, n_dcs)
    n_shards: int = 2
    commit_variant: str = "async"
    cache_coverage: float = 0.9     # fraction of own channels cached
    bounded_cache: bool = True      # LRU-cap caches at the declared size
    service_time_ms: Optional[float] = None  # DC request CPU cost
    client_latency: LatencyModel = field(default_factory=lambda: CELLULAR)
    dc_latency: LatencyModel = field(default_factory=lambda: ETHERNET)
    group_latency: LatencyModel = field(default_factory=lambda: LAN)
    seed: int = 7

    def resolved_k(self) -> int:
        if self.k_target is not None:
            return self.k_target
        return min(2, self.n_dcs)


class Deployment:
    """A built simulation: DCs, clients, per-user chat apps."""

    def __init__(self, config: DeploymentConfig, trace: MattermostTrace):
        if config.mode not in MODES:
            raise ValueError(f"unknown mode {config.mode!r}")
        self.config = config
        self.trace = trace
        self.sim = Simulation(seed=config.seed,
                              default_latency=config.client_latency)
        self.dcs: List[DataCenter] = []
        self.clients: List[Tuple[str, object, ChatApp]] = []
        self.groups: List[List[GroupMember]] = []
        self._build()

    # -- construction ---------------------------------------------------------
    def _build(self) -> None:
        cfg = self.config
        dc_ids = [f"dc{i}" for i in range(cfg.n_dcs)]
        for dc_id in dc_ids:
            dc = self.sim.spawn(
                DataCenter, dc_id,
                peer_dcs=[d for d in dc_ids if d != dc_id],
                n_shards=cfg.n_shards, k_target=cfg.resolved_k(),
                service_time_ms=cfg.service_time_ms)
            self.dcs.append(dc)
        for a in dc_ids:
            for b in dc_ids:
                if a < b:
                    self.sim.network.set_link(a, b, cfg.dc_latency)
            for shard in self.dcs[dc_ids.index(a)].shard_ids:
                self.sim.network.set_link(a, shard, LAN)

        users = self.trace.users[:cfg.n_clients]
        if cfg.mode == "antidote":
            self._build_cloud_clients(users, dc_ids)
        elif cfg.mode == "swiftcloud":
            self._build_edge_clients(users, dc_ids)
        else:
            self._build_groups(users, dc_ids)

    def _client_interest(self, app: ChatApp, user: str,
                         rng: random.Random,
                         node: Optional[EdgeNode] = None,
                         bound: bool = True) -> None:
        """Warm the cache with ~cache_coverage of the user's channels.

        With ``bounded_cache`` the LRU capacity is pinned to the declared
        size: later fetches of cold objects evict resident ones, which
        sustains the paper's steady-state hit ratio (~90%, section 7.3)
        instead of the cache monotonically absorbing the whole database.
        """
        for workspace in self.trace.user_workspaces[user]:
            channels = self.trace.channels[workspace]
            keep = [c for c in channels
                    if rng.random() < self.config.cache_coverage]
            app.open_workspace(workspace, keep)
        if node is not None and bound and self.config.bounded_cache:
            # Capacity below the working set: the LRU keeps churning, so
            # roughly a (1 - coverage) fraction of channel reads miss in
            # steady state (the paper's ~90% hit ratio, section 7.3).
            n_channels = sum(len(self.trace.channels[ws])
                             for ws in self.trace.user_workspaces[user])
            node.cache.capacity = 4 + max(
                1, int(self.config.cache_coverage * n_channels))

    def _build_cloud_clients(self, users: List[str],
                             dc_ids: List[str]) -> None:
        for index, user in enumerate(users):
            dc_id = dc_ids[index % len(dc_ids)]
            node_id = f"client/{user}"
            node = self.sim.spawn(CloudClient, node_id, dc_id=dc_id,
                                  user=user)
            self.sim.network.set_link(node_id, dc_id,
                                      self.config.client_latency)
            app = ChatApp(Connection(node), user)
            self.clients.append((user, node, app))

    def _build_edge_clients(self, users: List[str],
                            dc_ids: List[str]) -> None:
        rng = random.Random(self.config.seed * 31 + 1)
        for index, user in enumerate(users):
            dc_id = dc_ids[index % len(dc_ids)]
            node_id = f"edge/{user}"
            node = self.sim.spawn(EdgeNode, node_id, dc_id=dc_id,
                                  user=user)
            self.sim.network.set_link(node_id, dc_id,
                                      self.config.client_latency)
            app = ChatApp(Connection(node), user)
            self._client_interest(app, user, rng, node=node)
            node.connect()
            self.clients.append((user, node, app))

    def _build_groups(self, users: List[str], dc_ids: List[str]) -> None:
        cfg = self.config
        rng = random.Random(cfg.seed * 31 + 2)
        for group_index in range(0, len(users), cfg.group_size):
            chunk = users[group_index:group_index + cfg.group_size]
            dc_id = dc_ids[(group_index // cfg.group_size) % len(dc_ids)]
            group_id = f"group{group_index // cfg.group_size}"
            members: List[GroupMember] = []
            parent_id = f"peer/{chunk[0]}"
            for user in chunk:
                node_id = f"peer/{user}"
                node = self.sim.spawn(
                    GroupMember, node_id, dc_id=dc_id, group_id=group_id,
                    parent_id=parent_id,
                    commit_variant=cfg.commit_variant, user=user)
                app = ChatApp(Connection(node), user)
                # Parents act as the group's PoP-class cache: unbounded.
                self._client_interest(app, user, rng, node=node,
                                      bound=(node.node_id != parent_id))
                members.append(node)
                self.clients.append((user, node, app))
            # Fast links inside the group; cellular from parent to DC.
            for a in members:
                for b in members:
                    if a.node_id < b.node_id:
                        self.sim.network.set_link(a.node_id, b.node_id,
                                                  cfg.group_latency)
            self.sim.network.set_link(parent_id, dc_id,
                                      self.config.client_latency)
            form_group(members)
            self.groups.append(members)

    # -- operation -----------------------------------------------------------------
    def warm_up(self, duration_ms: float = 2000.0) -> None:
        """Let sessions open and caches seed."""
        self.sim.run_for(duration_ms)

    def all_stats(self) -> List[TxnStats]:
        out: List[TxnStats] = []
        for _user, node, _app in self.clients:
            out.extend(node.txn_stats)
        return out

    def apps_by_user(self) -> Dict[str, ChatApp]:
        return {user: app for user, _node, app in self.clients}

    def node_of(self, user: str):
        for u, node, _app in self.clients:
            if u == user:
                return node
        raise KeyError(user)
