"""Unified CI bench gate: ``python -m repro.bench.gate BENCH_x.json``.

Every benchmark job in CI used to carry its own inline ``python -
<<EOF`` heredoc re-implementing "load the report, compare fields,
exit 1".  This module replaces them with one CLI driven by a committed
threshold file (``benchmarks/gates.toml``), so acceptance criteria are
versioned next to the benchmarks they gate and a new benchmark only
needs a TOML table, not another copy-pasted script.

Dispatch: a report names its own gate via its ``"benchmark"`` field
(every ``BENCH_*.json`` writer sets one); Chrome-trace artifacts are
recognised by their ``"traceEvents"`` key; as a last resort the file
stem (minus the ``BENCH_`` prefix, truncated at the first ``_``) is
tried, so ``BENCH_chaos_group_s0.json`` still finds the ``chaos``
table if its writer predates the ``benchmark`` field.

Check grammar (one ``[[<name>.check]]`` per assertion)::

    [[replication_pipeline.check]]
    metric = "bytes_per_txn_reduction"   # dotted path; ints index lists
    op = "ge"                            # ge|gt|le|lt|eq|ne|truthy|
                                         #   spans_complete
    value = 0.40                         # literal threshold, or:
    # ref = "gate_min_speedup"           # threshold read from the report

``ref`` thresholds compare one report field against another — used by
the scale gate, whose floor is computed into the report itself, and by
the partial-replication gate's "reduction scales with replica factor"
monotonicity check.
"""

from __future__ import annotations

import argparse
import json
import sys
import tomllib
from pathlib import Path
from typing import Any, Dict, List, Sequence, Tuple

from ..obs import SPAN_KINDS

#: Comparison operators: (symbol for messages, predicate).
_OPS = {
    "ge": (">=", lambda a, b: a >= b),
    "gt": (">", lambda a, b: a > b),
    "le": ("<=", lambda a, b: a <= b),
    "lt": ("<", lambda a, b: a < b),
    "eq": ("==", lambda a, b: a == b),
    "ne": ("!=", lambda a, b: a != b),
}


class GateConfigError(Exception):
    """Malformed gates file or a report no gate knows about."""


def resolve(report: Any, path: str) -> Any:
    """Resolve a dotted metric path; integer segments index lists.

    ``"sweep.1.events"`` → ``report["sweep"][1]["events"]``.  Raises
    ``KeyError`` with the full path on any missing step so the gate
    failure message names what the report lost.
    """
    current = report
    for segment in path.split("."):
        try:
            if isinstance(current, (list, tuple)):
                current = current[int(segment)]
            else:
                current = current[segment]
        except (KeyError, IndexError, TypeError, ValueError):
            raise KeyError(path)
    return current


def _spans_complete(events: Any) -> Tuple[bool, str]:
    """Chrome-trace completeness: non-empty, all span kinds present."""
    if not events:
        return False, "empty Chrome trace"
    kinds = {e.get("name") for e in events if e.get("ph") == "i"}
    missing = [kind for kind in SPAN_KINDS if kind not in kinds]
    if missing:
        return False, f"trace missing span kinds: {missing}"
    return True, (f"{len(events)} events, all {len(SPAN_KINDS)} "
                  f"span kinds present")


def run_check(report: Any, check: Dict[str, Any]) -> Tuple[bool, str]:
    """Evaluate one check; returns (passed, human-readable detail)."""
    metric = check["metric"]
    op = check["op"]
    try:
        actual = resolve(report, metric)
    except KeyError:
        return False, f"{metric}: missing from report"
    if op == "truthy":
        return bool(actual), f"{metric} = {actual!r}"
    if op == "spans_complete":
        ok, detail = _spans_complete(actual)
        return ok, f"{metric}: {detail}"
    if op not in _OPS:
        raise GateConfigError(f"unknown op {op!r} for metric {metric!r}")
    if "ref" in check:
        try:
            threshold = resolve(report, check["ref"])
        except KeyError:
            return False, f"{check['ref']}: missing from report"
        origin = f" ({check['ref']})"
    elif "value" in check:
        threshold = check["value"]
        origin = ""
    else:
        raise GateConfigError(
            f"check on {metric!r} needs 'value' or 'ref'")
    symbol, predicate = _OPS[op]
    return (predicate(actual, threshold),
            f"{metric} = {actual!r} {symbol} {threshold!r}{origin}")


def benchmark_name(report: Any, path: Path,
                   gates: Dict[str, Any]) -> str:
    """Which gate table applies to this report?"""
    if isinstance(report, dict):
        name = report.get("benchmark")
        if name:
            return name
        if "traceEvents" in report:
            return "obs_trace"
    stem = path.stem
    if stem.startswith("BENCH_"):
        stem = stem[len("BENCH_"):]
    if stem in gates:
        return stem
    return stem.split("_")[0]


def gate_report(path: Path, gates: Dict[str, Any],
                log=print) -> List[str]:
    """Run every configured check against one report; returns failures."""
    with open(path) as handle:
        report = json.load(handle)
    name = benchmark_name(report, path, gates)
    table = gates.get(name)
    if table is None:
        raise GateConfigError(
            f"{path}: no gate table for benchmark {name!r} "
            f"(known: {', '.join(sorted(gates))})")
    checks = table.get("check", [])
    if not checks:
        raise GateConfigError(f"gate table {name!r} has no checks")
    failures = []
    log(f"{path} ({name}): {len(checks)} checks")
    for check in checks:
        ok, detail = run_check(report, check)
        log(f"  {'PASS' if ok else 'FAIL'} {detail}")
        if not ok:
            failures.append(f"{path}: {detail}")
    return failures


def load_gates(path: Path) -> Dict[str, Any]:
    with open(path, "rb") as handle:
        return tomllib.load(handle)


def _default_gates_path() -> Path:
    local = Path("benchmarks/gates.toml")
    if local.exists():
        return local
    return (Path(__file__).resolve().parents[3]
            / "benchmarks" / "gates.toml")


def main(argv: Sequence[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.gate",
        description="Gate benchmark reports against committed "
                    "thresholds (benchmarks/gates.toml)")
    parser.add_argument("reports", nargs="+", metavar="REPORT.json",
                        help="benchmark report(s) to gate")
    parser.add_argument("--gates", default=None, metavar="TOML",
                        help="threshold file (default "
                             "benchmarks/gates.toml)")
    args = parser.parse_args(argv)
    gates_path = Path(args.gates) if args.gates \
        else _default_gates_path()
    try:
        gates = load_gates(gates_path)
    except (OSError, tomllib.TOMLDecodeError) as exc:
        print(f"cannot load gates file {gates_path}: {exc}",
              file=sys.stderr)
        return 2
    failures: List[str] = []
    try:
        for report in args.reports:
            failures += gate_report(Path(report), gates)
    except (OSError, json.JSONDecodeError, GateConfigError) as exc:
        print(f"gate error: {exc}", file=sys.stderr)
        return 2
    if failures:
        print(f"\n{len(failures)} gate check(s) FAILED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
