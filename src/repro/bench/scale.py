"""Million-node scale scenario: how fast does the simulator itself run?

The paper validates colony on a small Grid'5000 testbed (section 7); the
north star is millions of edge nodes, which makes the discrete-event
simulator the system under test here.  This module builds a *wide*
topology — many DCs, thousands of edge sessions, a small population of
active writers — and measures how many simulator events per wall-clock
second the sim core sustains.

The scenario is deterministic for a given ``ScaleConfig`` (all times and
choices come from seeded RNGs); only the wall-clock measurements differ
between machines.  The dominant event populations are exactly the ones
the sim-core fast path targets:

* periodic timers — per-edge retry timers, DC keepalive / anti-entropy /
  compaction ticks, Nagle replication flushes (the timer-wheel load);
* message deliveries — session traffic, K-stable update pushes fanned
  out to every session, replication frames (the allocation-free
  delivery load).

``run_scale`` returns a plain dict so the benchmark sweep and the CLI
(`python -m repro.bench`) can serialise it straight into
``BENCH_scale.json``.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Dict, List

from ..core.txn import ObjectKey
from ..dc.datacenter import DataCenter
from ..edge.node import EdgeNode
from ..sim.network import CELLULAR, ETHERNET, LAN, LatencyModel
from ..sim.runtime import Simulation


@dataclass
class ScaleConfig:
    """One point of the scale sweep (deterministic given the seed)."""

    n_nodes: int = 1000
    seed: int = 0
    #: Simulated measurement window (ms).  The settle phase before it
    #: (sessions opening, caches seeding) is excluded from the rates.
    duration_ms: float = 3000.0
    settle_ms: float = 800.0
    #: Edge nodes per cell; a cell shares one counter object, so pushes
    #: fan out within the cell while most traffic stays node-local.
    cell_size: int = 25
    #: Active writers are capped: scale grows the *session* population
    #: (timers, pushes, keepalives), not the offered write load.
    max_writers: int = 400
    txns_per_writer: int = 4

    def resolved_dcs(self) -> int:
        return max(2, min(8, self.n_nodes // 2500))

    def resolved_writers(self) -> int:
        return min(self.max_writers, max(20, self.n_nodes // 50))


def build_scale_world(config: ScaleConfig) -> Simulation:
    """Spawn the DC mesh and the edge population, connects staggered."""
    sim = Simulation(seed=config.seed, default_latency=CELLULAR)
    n_dcs = config.resolved_dcs()
    dc_ids = [f"dc{i}" for i in range(n_dcs)]
    for dc_id in dc_ids:
        dc = sim.spawn(
            DataCenter, dc_id,
            peer_dcs=[d for d in dc_ids if d != dc_id],
            n_shards=2, k_target=min(2, n_dcs))
        for shard in dc.shard_ids:
            sim.network.set_link(dc_id, shard, LAN)
    for a in dc_ids:
        for b in dc_ids:
            if a < b:
                sim.network.set_link(a, b, ETHERNET)

    rng = random.Random(f"scale-build/{config.seed}")
    access = LatencyModel(50.0, 10.0)  # cellular access links
    for index in range(config.n_nodes):
        cell = index // config.cell_size
        dc_id = dc_ids[cell % n_dcs]
        node_id = f"n{index}"
        node = sim.spawn(EdgeNode, node_id, dc_id=dc_id)
        sim.network.set_link(node_id, dc_id, access)
        node.declare_interest(ObjectKey("scale", f"cell{cell}"),
                              "counter")
        node.declare_interest(ObjectKey("scale", f"own{index}"),
                              "counter")
        # Stagger session opens so the seed reads do not form one
        # thundering herd at t=0.
        sim.loop.schedule(rng.uniform(0.0, config.settle_ms * 0.5),
                          node.connect)
    return sim


def _schedule_writers(sim: Simulation, config: ScaleConfig,
                      start: float, counters: Dict[str, int]) -> None:
    """Arm the writer population inside the measurement window."""
    rng = random.Random(f"scale-load/{config.seed}")
    writers = config.resolved_writers()
    span = max(config.duration_ms - 400.0, 100.0)
    for w in range(writers):
        index = rng.randrange(config.n_nodes)
        node = sim.actors[f"n{index}"]
        cell = index // config.cell_size
        for _ in range(config.txns_per_writer):
            at = start + rng.uniform(50.0, span)
            # 75% of writes hit the shared cell object (push fan-out),
            # the rest stay on the node's private counter.
            key = (ObjectKey("scale", f"cell{cell}")
                   if rng.random() < 0.75
                   else ObjectKey("scale", f"own{index}"))
            sim.loop.schedule_at(at, _make_txn(node, key, counters))


def _make_txn(node: EdgeNode, key: ObjectKey,
              counters: Dict[str, int]):
    def body(tx):
        yield tx.update(key, "counter", "increment", 1)

    def fire() -> None:
        counters["submitted"] += 1
        node.run_transaction(
            body,
            on_done=lambda r, s: counters.__setitem__(
                "committed", counters["committed"] + 1),
            on_abort=lambda exc: counters.__setitem__(
                "aborted", counters["aborted"] + 1))
    return fire


def run_scale(config: ScaleConfig) -> Dict[str, Any]:
    """Build, settle, measure.  Returns the BENCH_scale row.

    This module is the one place wall-clock reads are the *measurement*,
    not a determinism hazard: the simulated world is fully seeded, and
    ``perf_counter`` only times how fast the host executes it.
    """
    # colony-lint: disable=D101
    build_wall = time.perf_counter()
    sim = build_scale_world(config)
    counters = {"submitted": 0, "committed": 0, "aborted": 0}
    build_wall = time.perf_counter() - build_wall   # colony-lint: disable=D101

    settle_wall = time.perf_counter()               # colony-lint: disable=D101
    sim.run_for(config.settle_ms)
    settle_wall = time.perf_counter() - settle_wall  # colony-lint: disable=D101

    _schedule_writers(sim, config, sim.now, counters)
    events_before = sim.loop.processed_events
    stats_before = sim.network.stats.snapshot()
    # The settled world is static for the rest of the run; freezing it
    # out of cyclic-GC scanning measures the sim core, not the
    # collector rescanning 10^5 immortal actors (see DESIGN.md §13).
    with sim.frozen_world() as frozen:
        t0 = time.perf_counter()                    # colony-lint: disable=D101
        sim.run_for(config.duration_ms)
        wall_s = time.perf_counter() - t0           # colony-lint: disable=D101
    loop_events = sim.loop.processed_events - events_before
    phase = sim.network.stats.since(stats_before)
    # Logical events: what a one-event-per-message loop (the pre-batching
    # implementation, and the committed baseline) would have processed.
    # Each delivery batch is one loop event carrying ``len(batch)``
    # messages, so the difference is exactly the saved heap operations.
    events = loop_events - phase.delivery_events + phase.messages_delivered

    return {
        "n_nodes": config.n_nodes,
        "n_dcs": config.resolved_dcs(),
        "writers": config.resolved_writers(),
        "seed": config.seed,
        "sim_ms": config.duration_ms,
        "build_wall_s": round(build_wall, 3),
        "settle_wall_s": round(settle_wall, 3),
        "wall_s": round(wall_s, 3),
        "events": events,
        "loop_events": loop_events,
        "messages_delivered": phase.messages_delivered,
        "events_per_sec": round(events / wall_s, 1) if wall_s else 0.0,
        "sim_ms_per_wall_s": round(config.duration_ms / wall_s, 1)
        if wall_s else 0.0,
        "txns_submitted": counters["submitted"],
        "txns_committed": counters["committed"],
        "txns_aborted": counters["aborted"],
        "pending_events": sim.loop.pending(),
        "gc_frozen_objects": frozen,
    }


#: The default sweep: three decades of node count.  Durations shrink as
#: the population grows so each point stays minutes-bounded; events/s is
#: a *rate*, so the shorter window does not bias it.
SWEEP = (
    ScaleConfig(n_nodes=1_000, duration_ms=4000.0),
    ScaleConfig(n_nodes=10_000, duration_ms=2000.0),
    ScaleConfig(n_nodes=100_000, duration_ms=400.0, settle_ms=1000.0),
)


def run_sweep(configs=SWEEP) -> List[Dict[str, Any]]:
    return [run_scale(config) for config in configs]
