"""CLI for the scale benchmark: ``python -m repro.bench``.

Examples::

    python -m repro.bench                        # one 10^4-node point
    python -m repro.bench --nodes 1000           # pick the population
    python -m repro.bench --sweep                # the BENCH_scale sweep
    python -m repro.bench --profile              # cProfile the hot path
    python -m repro.bench --profile --top 40     # deeper profile listing

``--profile`` wraps the measured run in :mod:`cProfile` and prints the
top-N functions by cumulative time after the result row — the intended
workflow for sim-core optimisation work: profile, flatten the hottest
frame, re-run, compare ``events_per_sec``.  Profiling inflates the
wall-clock numbers (a row produced under ``--profile`` is not
comparable to an unprofiled one), so the row is marked ``"profiled":
true``.
"""

from __future__ import annotations

import argparse
import cProfile
import json
import os
import pstats
import sys
from typing import List

from .scale import SWEEP, ScaleConfig, run_scale, run_sweep


def _parse_args(argv: List[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Sim-core scale benchmark (events/s at N nodes)")
    parser.add_argument("--nodes", type=int, default=10_000,
                        help="edge population (default 10000)")
    parser.add_argument("--duration", type=float, default=400.0,
                        help="measured sim window in ms (default 400)")
    parser.add_argument("--seed", type=int, default=0,
                        help="scenario seed (default 0)")
    parser.add_argument("--sweep", action="store_true",
                        help="run the full BENCH_scale sweep instead "
                             "of one point")
    parser.add_argument("--profile", action="store_true",
                        help="run under cProfile and print the top-N "
                             "functions by cumulative time")
    parser.add_argument("--top", type=int, default=25,
                        help="functions to list with --profile "
                             "(default 25)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="also write the result JSON here")
    return parser.parse_args(argv)


def main(argv: List[str] = None) -> int:
    # Same canonicalisation as the chaos CLI: behaviour (and therefore
    # the logical event count) is a function of the hash seed, so pin
    # it for run-to-run comparable rows.
    if argv is None and os.environ.get("PYTHONHASHSEED") is None:
        os.environ["PYTHONHASHSEED"] = "0"
        os.execv(sys.executable,
                 [sys.executable, "-m", "repro.bench"] + sys.argv[1:])
    args = _parse_args(sys.argv[1:] if argv is None else argv)

    if args.sweep:
        configs = SWEEP
        runner = lambda: run_sweep(configs)          # noqa: E731
    else:
        config = ScaleConfig(n_nodes=args.nodes, seed=args.seed,
                             duration_ms=args.duration)
        runner = lambda: run_scale(config)           # noqa: E731

    if args.profile:
        profiler = cProfile.Profile()
        result = profiler.runcall(runner)
        if isinstance(result, dict):
            result["profiled"] = True
        else:
            for row in result:
                row["profiled"] = True
    else:
        result = runner()

    print(json.dumps(result, indent=2, sort_keys=True))
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(json.dumps(result, indent=2, sort_keys=True)
                         + "\n")
        print(f"bench: result written to {args.out}", file=sys.stderr)

    if args.profile:
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative")
        print(f"\nbench: top {args.top} functions by cumulative time",
              file=sys.stderr)
        stats.print_stats(args.top)
    return 0


if __name__ == "__main__":
    sys.exit(main())
