"""Latency/throughput aggregation for the benchmark harness."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..edge.node import TxnStats


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of a pre-sorted sequence."""
    if not sorted_values:
        return float("nan")
    rank = max(0, min(len(sorted_values) - 1,
                      int(math.ceil(q / 100.0 * len(sorted_values))) - 1))
    return sorted_values[rank]


@dataclass
class LatencySummary:
    count: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float

    def __str__(self) -> str:
        return (f"n={self.count} mean={self.mean_ms:.3f}ms"
                f" p50={self.p50_ms:.3f} p95={self.p95_ms:.3f}"
                f" p99={self.p99_ms:.3f} max={self.max_ms:.3f}")


def summarise(stats: Iterable[TxnStats],
              since: float = 0.0,
              until: Optional[float] = None,
              include_aborted: bool = False) -> LatencySummary:
    """Latency summary over the records inside the time window."""
    lat = sorted(s.latency for s in stats
                 if s.end >= since
                 and (until is None or s.end <= until)
                 and (include_aborted or not s.aborted))
    if not lat:
        return LatencySummary(0, float("nan"), float("nan"),
                              float("nan"), float("nan"), float("nan"))
    return LatencySummary(
        count=len(lat),
        mean_ms=sum(lat) / len(lat),
        p50_ms=percentile(lat, 50),
        p95_ms=percentile(lat, 95),
        p99_ms=percentile(lat, 99),
        max_ms=lat[-1],
    )


def throughput(stats: Iterable[TxnStats], since: float,
               until: float) -> float:
    """Completed transactions per second within the window."""
    count = sum(1 for s in stats
                if since <= s.end <= until and not s.aborted)
    window_s = (until - since) / 1000.0
    return count / window_s if window_s > 0 else float("nan")


def served_by_breakdown(stats: Iterable[TxnStats]) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for s in stats:
        out[s.served_by] = out.get(s.served_by, 0) + 1
    return out


@dataclass
class TimelinePoint:
    """One transaction on a latency-vs-time plot (Figures 5-7)."""

    at_ms: float
    latency_ms: float
    served_by: str


def timeline(stats: Iterable[TxnStats]) -> List[TimelinePoint]:
    return sorted((TimelinePoint(s.end, s.latency, s.served_by)
                   for s in stats if not s.aborted),
                  key=lambda p: p.at_ms)


def bucket_timeline(points: Sequence[TimelinePoint], bucket_ms: float,
                    served_by: Optional[str] = None) \
        -> List[Tuple[float, float]]:
    """(bucket centre, mean latency) series — one plot line."""
    buckets: Dict[int, List[float]] = {}
    for point in points:
        if served_by is not None and point.served_by != served_by:
            continue
        buckets.setdefault(int(point.at_ms // bucket_ms),
                           []).append(point.latency_ms)
    return [(index * bucket_ms + bucket_ms / 2.0,
             sum(values) / len(values))
            for index, values in sorted(buckets.items())]
