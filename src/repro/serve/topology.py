"""TOML topology files for live deployments.

A topology describes the deployment the way the paper's Figure 1 does:
sites, their roles, who connects to whom — plus the seeded workload the
deployment is driven with.  Example::

    [deployment]
    name = "serve-3dc"
    seed = 0

    [workload]
    n_txns = 18
    window_ms = 2000.0

    [[keys]]
    bucket = "app"
    key = "c0"
    type = "counter"

    [[sites]]
    name = "dc0"
    role = "dc"
    listen = "127.0.0.1:7450"
    n_shards = 2
    k_target = 2

    [[sites]]
    name = "m0"
    role = "member"
    listen = "127.0.0.1:7453"
    dc = "dc0"
    group = "g"
    parent = "m0"
    commit_variant = "async"

    [[sites]]
    name = "far"
    role = "edge"
    listen = "127.0.0.1:7456"
    dc = "dc1"

    [supervisor]
    listen = "127.0.0.1:7459"

Every ``dc`` site automatically peers with every other ``dc`` site (the
paper's core-cloud mesh).  ``member`` sites sharing a ``group`` form one
peer group; the ``parent`` member opens the group's DC session.  Edge
and member sites declare interest in every listed key and issue the
workload's transactions unless ``client = false``.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.txn import ObjectKey
from ..groups.peergroup import COMMIT_VARIANTS

ROLES = ("dc", "pop", "edge", "member")


@dataclass
class Site:
    name: str
    role: str
    host: str
    port: int
    dc: Optional[str] = None          # upstream (edge/member/pop roles)
    group: Optional[str] = None       # member role
    parent: Optional[str] = None      # member role
    commit_variant: str = "async"
    n_shards: int = 2
    k_target: int = 1
    client: bool = True               # issues workload transactions

    @property
    def addr(self) -> Tuple[str, int]:
        return (self.host, self.port)


@dataclass
class Topology:
    name: str
    seed: int
    sites: List[Site]
    keys: List[Tuple[ObjectKey, str]]
    n_txns: int
    window_ms: float
    settle_max_ms: float
    supervisor_addr: Tuple[str, int]
    path: Optional[str] = None
    by_name: Dict[str, Site] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.by_name = {site.name: site for site in self.sites}

    @property
    def dcs(self) -> List[Site]:
        return [s for s in self.sites if s.role == "dc"]

    @property
    def clients(self) -> List[Site]:
        return [s for s in self.sites
                if s.role in ("edge", "member") and s.client]

    def members_of(self, group: str) -> List[Site]:
        return [s for s in self.sites
                if s.role == "member" and s.group == group]

    @property
    def groups(self) -> List[str]:
        seen: List[str] = []
        for site in self.sites:
            if site.role == "member" and site.group not in seen:
                seen.append(site.group)  # type: ignore[arg-type]
        return seen

    def homes(self) -> Dict[str, str]:
        """Protocol node id -> site name, for transport routing.

        Each site hosts the protocol actor of its own name plus a
        control agent (``<name>.ctl``); the supervisor hosts only its
        control agent.
        """
        homes = {}
        for site in self.sites:
            homes[site.name] = site.name
            homes[f"{site.name}.ctl"] = site.name
        homes["supervisor.ctl"] = "supervisor"
        return homes

    def peer_addrs(self) -> Dict[str, Tuple[str, int]]:
        addrs = {site.name: site.addr for site in self.sites}
        addrs["supervisor"] = self.supervisor_addr
        return addrs


def _parse_addr(raw: str, context: str) -> Tuple[str, int]:
    host, sep, port = raw.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"{context}: bad address {raw!r} "
                         "(expected host:port)")
    return host, int(port)


def parse_topology(data: dict, path: Optional[str] = None) -> Topology:
    deployment = data.get("deployment", {})
    workload = data.get("workload", {})

    keys: List[Tuple[ObjectKey, str]] = []
    for entry in data.get("keys", []):
        keys.append((ObjectKey(entry["bucket"], entry["key"]),
                     entry.get("type", "counter")))
    if not keys:
        raise ValueError("topology declares no [[keys]]")

    sites: List[Site] = []
    for entry in data.get("sites", []):
        role = entry.get("role")
        if role not in ROLES:
            raise ValueError(f"site {entry.get('name')!r}: "
                             f"unknown role {role!r}")
        host, port = _parse_addr(entry["listen"],
                                 f"site {entry['name']!r}")
        variant = entry.get("commit_variant", "async")
        if variant not in COMMIT_VARIANTS:
            raise ValueError(f"site {entry['name']!r}: unknown "
                             f"commit_variant {variant!r}")
        sites.append(Site(
            name=entry["name"], role=role, host=host, port=port,
            dc=entry.get("dc"), group=entry.get("group"),
            parent=entry.get("parent"), commit_variant=variant,
            n_shards=int(entry.get("n_shards", 2)),
            k_target=int(entry.get("k_target", 1)),
            client=bool(entry.get("client", True))))
    if not sites:
        raise ValueError("topology declares no [[sites]]")
    names = [s.name for s in sites]
    if len(set(names)) != len(names):
        raise ValueError("duplicate site names")

    for site in sites:
        if site.role in ("edge", "member", "pop"):
            if site.dc is None:
                raise ValueError(f"site {site.name!r}: role "
                                 f"{site.role!r} needs dc = ...")
        if site.role == "member":
            if site.group is None or site.parent is None:
                raise ValueError(f"site {site.name!r}: member needs "
                                 "group and parent")

    sup = data.get("supervisor", {})
    sup_addr = _parse_addr(sup.get("listen", "127.0.0.1:0"),
                           "supervisor")

    return Topology(
        name=deployment.get("name", "serve"),
        seed=int(deployment.get("seed", 0)),
        sites=sites, keys=keys,
        n_txns=int(workload.get("n_txns", 18)),
        window_ms=float(workload.get("window_ms", 2000.0)),
        settle_max_ms=float(workload.get("settle_max_ms", 30000.0)),
        supervisor_addr=sup_addr, path=path)


def load_topology(path: str) -> Topology:
    with open(path, "rb") as handle:
        data = tomllib.load(handle)
    return parse_topology(data, path=path)
