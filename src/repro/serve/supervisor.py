"""Supervisor: boot the sites, drive the workload, check digest parity.

The supervisor is the deployment's root process.  It

1. spawns one child process per topology site (``python -m repro.serve
   --topology T --node NAME``),
2. runs the *same* seeded workload under the discrete-event simulator
   in-process (the reference run),
3. tells every site to start its workload slice, polls canonical state
   digests over the control plane until every DC agrees and the op
   count is complete (stable across two probes),
4. shuts every site down and waits for clean exits,
5. writes a ``BENCH_serve.json`` report whose headline metric is
   **digest parity**: live digest == DES digest == the analytic fold of
   the op list.

The supervisor runs under the real asyncio backend, never under the
DES, so wall-clock reads are correct here.
# colony-lint: disable-file=D101
"""

from __future__ import annotations

import asyncio
import json
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Dict, Optional

from ..transport.asyncio_backend import AsyncioTransport
from .builder import run_reference
from .control import (CtrlBye, CtrlDigestReply, CtrlDigestRequest,
                      CtrlShutdown, CtrlStart)
from .topology import Topology
from .workload import generate_ops

POLL_INTERVAL_S = 0.25
#: Consecutive identical converged probes before declaring the live
#: deployment quiescent.
STABLE_PROBES = 2
SHUTDOWN_GRACE_S = 10.0


def spawn_site(topo: Topology, site_name: str,
               log_dir: Optional[str] = None) -> subprocess.Popen:
    """Start one site child process (stderr carries its JSON log)."""
    assert topo.path is not None, "spawning needs an on-disk topology"
    cmd = [sys.executable, "-m", "repro.serve",
           "--topology", topo.path, "--node", site_name]
    env = dict(os.environ)
    src_dir = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (f"{src_dir}{os.pathsep}{existing}"
                         if existing else src_dir)
    log_handle: Any = subprocess.DEVNULL
    if log_dir is not None:
        Path(log_dir).mkdir(parents=True, exist_ok=True)
        log_handle = open(Path(log_dir) / f"{site_name}.jsonl", "w")
    return subprocess.Popen(cmd, env=env, stdout=subprocess.DEVNULL,
                            stderr=log_handle)


async def _supervise(topo: Topology, n_ops: int,
                     deadline_s: float) -> Dict[str, Any]:
    """Control-plane side: start, poll to quiescence, shut down."""
    transport = AsyncioTransport("supervisor", seed=topo.seed,
                                 homes=topo.homes(),
                                 peers=topo.peer_addrs(),
                                 listen=topo.supervisor_addr)
    await transport.start()

    latest: Dict[str, CtrlDigestReply] = {}
    byes: set = set()

    def handler(message: Any, sender: str) -> None:
        if isinstance(message, CtrlDigestReply):
            latest[message.site] = message
        elif isinstance(message, CtrlBye):
            byes.add(message.site)

    transport.attach("supervisor.ctl", handler)

    site_names = [s.name for s in topo.sites]
    dc_names = {s.name for s in topo.dcs}
    client_names = [s.name for s in topo.clients]

    for name in site_names:
        transport.send("supervisor.ctl", f"{name}.ctl",
                       CtrlStart(run_id=topo.name))

    live_digest: Optional[str] = None
    stable = 0
    last_digest: Optional[str] = None
    probe = 0
    t_deadline = time.monotonic() + deadline_s
    while time.monotonic() < t_deadline:
        probe += 1
        for name in site_names:
            transport.send("supervisor.ctl", f"{name}.ctl",
                           CtrlDigestRequest(probe=probe))
        await asyncio.sleep(POLL_INTERVAL_S)
        dc_replies = [r for s, r in latest.items() if s in dc_names]
        ops_done = sum(latest[s].ops_done for s in client_names
                       if s in latest)
        if (len(dc_replies) == len(dc_names) and ops_done >= n_ops
                and len({r.digest for r in dc_replies}) == 1):
            digest = dc_replies[0].digest
            if digest == last_digest:
                stable += 1
                if stable >= STABLE_PROBES:
                    live_digest = digest
                    break
            else:
                stable = 1
                last_digest = digest
        else:
            stable = 0
            last_digest = None

    for name in site_names:
        transport.send("supervisor.ctl", f"{name}.ctl", CtrlShutdown())
    t_grace = time.monotonic() + SHUTDOWN_GRACE_S
    while time.monotonic() < t_grace and len(byes) < len(site_names):
        await asyncio.sleep(0.05)
    await transport.stop()

    return {
        "live_digest": live_digest,
        "converged": live_digest is not None,
        "probes": probe,
        "ops_done": sum(r.ops_done for s, r in latest.items()
                        if s in client_names),
        "byes": sorted(byes),
        "site_digests": {s: r.digest for s, r in sorted(latest.items())},
    }


def run_deployment(topo: Topology,
                   log_dir: Optional[str] = None,
                   log=print) -> Dict[str, Any]:
    """Full smoke deployment + parity check; returns the report."""
    ops = generate_ops(topo.seed, [s.name for s in topo.clients],
                       topo.keys, topo.n_txns, topo.window_ms)

    log(f"[serve] spawning {len(topo.sites)} site processes")
    procs = {site.name: spawn_site(topo, site.name, log_dir=log_dir)
             for site in topo.sites}

    try:
        log("[serve] running DES reference workload")
        reference = run_reference(topo, ops)
        log(f"[serve] reference digest {reference['digest']} "
            f"(converged={reference['converged']})")

        deadline_s = (topo.window_ms + topo.settle_max_ms) / 1000.0 + 15.0
        live = asyncio.run(_supervise(topo, len(ops), deadline_s))
        log(f"[serve] live digest {live['live_digest']} "
            f"(converged={live['converged']})")
    finally:
        exit_codes = {}
        t_grace = time.monotonic() + SHUTDOWN_GRACE_S
        for name, proc in procs.items():
            timeout = max(0.1, t_grace - time.monotonic())
            try:
                exit_codes[name] = proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
                exit_codes[name] = "killed"

    clean_shutdown = (sorted(live["byes"]) ==
                      sorted(s.name for s in topo.sites)
                      and all(code == 0 for code in exit_codes.values()))
    parity = (live["live_digest"] is not None
              and live["live_digest"] == reference["digest"]
              and live["live_digest"] == reference["expected_digest"])
    report = {
        "benchmark": "serve_smoke",
        "topology": topo.name,
        "seed": topo.seed,
        "sites": len(topo.sites),
        "ops": len(ops),
        "digest_parity": parity,
        "des": reference,
        "live": live,
        "exit_codes": exit_codes,
        "clean_shutdown": clean_shutdown,
        "ok": parity and clean_shutdown,
    }
    return report


def write_report(report: Dict[str, Any], path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
