"""``python -m repro.serve``: the protocol stack as real OS processes.

One process per deployment *site* (DC, PoP, edge node or group member),
described by a TOML topology file, wired together with
:class:`~repro.transport.asyncio_backend.AsyncioTransport` over
localhost (or any reachable) TCP.  The supervisor process boots the
sites, drives the topology's seeded workload, polls state digests over
the control plane, and checks **digest parity**: the same workload run
under the discrete-event simulator must converge to the same canonical
state digest as the live deployment.
"""

from .topology import Topology, load_topology
from .workload import canonical_digest, expected_state, generate_ops

__all__ = ["Topology", "load_topology", "canonical_digest",
           "expected_state", "generate_ops"]
