"""Control-plane messages and the per-site control agent.

The supervisor steers a live deployment entirely through protocol
messages — the control plane rides the same transport and codec as the
data plane, so there is no second RPC mechanism to keep alive.  Each
site attaches a :class:`ControlAgent` under ``<site>.ctl``; the
supervisor's own agent is ``supervisor.ctl``.

The messages are registered with the wire codec exactly like protocol
messages (they define ``wire_size()`` and live in a registered module).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..dc.messages import HEADER_BYTES
from ..sim.actor import Actor
from ..transport.codec import register_module


@dataclass(frozen=True, slots=True)
class CtrlStart:
    """Supervisor -> site: begin the site's workload slice."""

    run_id: str

    def wire_size(self) -> int:
        return HEADER_BYTES + len(self.run_id)


@dataclass(frozen=True, slots=True)
class CtrlDigestRequest:
    """Supervisor -> site: report state digest and progress."""

    probe: int

    def wire_size(self) -> int:
        return HEADER_BYTES + 8


@dataclass(frozen=True, slots=True)
class CtrlDigestReply:
    """Site -> supervisor: canonical digest plus workload progress."""

    probe: int
    site: str
    role: str
    digest: str          # canonical hex digest of local state
    ops_done: int
    ops_total: int

    def wire_size(self) -> int:
        return (HEADER_BYTES + 8 + len(self.site) + len(self.role)
                + len(self.digest) + 16)


@dataclass(frozen=True, slots=True)
class CtrlShutdown:
    """Supervisor -> site: stop the process cleanly."""

    reason: str = "done"

    def wire_size(self) -> int:
        return HEADER_BYTES + len(self.reason)


@dataclass(frozen=True, slots=True)
class CtrlBye:
    """Site -> supervisor: acknowledging shutdown."""

    site: str

    def wire_size(self) -> int:
        return HEADER_BYTES + len(self.site)


register_module(__name__)


class ControlAgent(Actor):
    """One site's control endpoint (``<site>.ctl``)."""

    def __init__(self, site: str, transport: Any, *,
                 role: str,
                 digest_fn: Callable[[], str],
                 progress_fn: Callable[[], tuple],
                 on_start: Optional[Callable[[], None]] = None,
                 on_shutdown: Optional[Callable[[], None]] = None):
        super().__init__(f"{site}.ctl", transport, None)
        self.site = site
        self.role = role
        self.digest_fn = digest_fn
        self.progress_fn = progress_fn
        self.on_start = on_start
        self.on_shutdown = on_shutdown
        self._started = False

    def on_message(self, message: Any, sender: str) -> None:
        if isinstance(message, CtrlStart):
            if not self._started:
                self._started = True
                if self.on_start is not None:
                    self.on_start()
        elif isinstance(message, CtrlDigestRequest):
            ops_done, ops_total = self.progress_fn()
            self.send(sender, CtrlDigestReply(
                probe=message.probe, site=self.site, role=self.role,
                digest=self.digest_fn(), ops_done=ops_done,
                ops_total=ops_total))
        elif isinstance(message, CtrlShutdown):
            self.send(sender, CtrlBye(site=self.site))
            if self.on_shutdown is not None:
                self.on_shutdown()
