"""One deployment site as one OS process.

``python -m repro.serve --topology T --node NAME`` lands here: build
the site's protocol actor over an :class:`AsyncioTransport`, join the
deployment (sessions, group bootstrap), run the site's slice of the
seeded workload when the supervisor says go, answer digest probes, and
exit cleanly on ``CtrlShutdown``.

Each site writes a JSON-lines log (boot, workload progress, shutdown)
so a failed smoke deployment can be diagnosed from the uploaded CI
artifacts.

This module runs under the real asyncio backend, never under the DES,
so wall-clock reads are correct here.
# colony-lint: disable-file=D101
"""

from __future__ import annotations

import asyncio
import json
import sys
import time
from typing import Any, Dict, List, Optional, TextIO

from ..transport.asyncio_backend import AsyncioTransport
from .builder import bootstrap_group, build_site
from .control import ControlAgent
from .topology import Topology
from .workload import Op, canonical_digest, generate_ops

#: A site that never hears from the supervisor gives up eventually, so
#: an orphaned process (supervisor crash) cannot linger forever.
ORPHAN_TIMEOUT_S = 180.0


class _NodeLog:
    """JSON-lines event log; line-buffered so crashes keep the tail."""

    def __init__(self, stream: TextIO):
        self.stream = stream
        self._t0 = time.monotonic()

    def write(self, event: str, **fields: Any) -> None:
        record = {"t_ms": round((time.monotonic() - self._t0) * 1000, 3),
                  "event": event, **fields}
        self.stream.write(json.dumps(record, sort_keys=True) + "\n")
        self.stream.flush()


async def run_node(topo: Topology, site_name: str,
                   log_stream: Optional[TextIO] = None) -> Dict[str, Any]:
    """Run one site until shutdown; returns a summary dict."""
    site = topo.by_name[site_name]
    log = _NodeLog(log_stream or sys.stderr)
    transport = AsyncioTransport(site.name, seed=topo.seed,
                                 homes=topo.homes(),
                                 peers=topo.peer_addrs(),
                                 listen=site.addr)
    await transport.start()
    log.write("boot", site=site.name, role=site.role,
              listen=f"{site.host}:{site.port}", seed=topo.seed)

    actor = build_site(transport, topo, site)
    if site.role in ("edge", "pop"):
        actor.connect()
    elif site.role == "member":
        bootstrap_group(topo, actor)

    all_ops = generate_ops(topo.seed,
                           [s.name for s in topo.clients],
                           topo.keys, topo.n_txns, topo.window_ms)
    my_ops: List[Op] = [op for op in all_ops if op.client == site.name]
    progress = {"done": 0, "aborted": 0}

    def fire_op(op: Op) -> None:
        def body(tx):
            yield tx.update(op.key, op.type_name, op.method, *op.args)

        def done(result, stats):
            progress["done"] += 1
            log.write("op_committed", done=progress["done"],
                      total=len(my_ops))

        def abort(exc):
            progress["aborted"] += 1
            log.write("op_aborted", error=repr(exc))

        actor.run_transaction(body, on_done=done, on_abort=abort)

    def start_workload() -> None:
        log.write("workload_start", ops=len(my_ops))
        for op in my_ops:
            transport.schedule_fast(op.at_ms, fire_op, (op,))

    stop = asyncio.Event()
    ControlAgent(
        site.name, transport, role=site.role,
        digest_fn=lambda: canonical_digest(actor.state_digest()),
        progress_fn=lambda: (progress["done"], len(my_ops)),
        on_start=start_workload,
        on_shutdown=stop.set)

    try:
        await asyncio.wait_for(stop.wait(), timeout=ORPHAN_TIMEOUT_S)
        clean = True
    except asyncio.TimeoutError:
        log.write("orphan_timeout")
        clean = False
    # Give the CtrlBye frame one loop turn to reach the wire.
    await asyncio.sleep(0.05)
    await transport.stop()
    summary = {"site": site.name, "role": site.role,
               "ops_done": progress["done"],
               "ops_aborted": progress["aborted"],
               "clean": clean,
               "unroutable": transport.unroutable,
               "messages_sent": transport.stats.messages_sent}
    log.write("shutdown", **summary)
    return summary
