"""Build topology sites on either transport backend.

The same construction code serves both halves of the parity check:

* the live path builds *one* site per process over an
  :class:`~repro.transport.asyncio_backend.AsyncioTransport`;
* the reference path builds *every* site into one
  :class:`~repro.sim.runtime.Simulation` (with the paper's latency
  presets on the links) and drives the identical workload.

Group bootstrap is config-driven rather than object-driven: every
member derives the roster from the topology and calls ``init_group``
locally, and the parent absorbs each member's interest set from the
topology's key list — the cross-process equivalent of
``repro.groups.peergroup.form_group``, which reaches into all member
objects directly and therefore only works inside one process.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..dc.datacenter import DataCenter
from ..edge.node import EdgeNode
from ..edge.pop import PoPNode
from ..groups.peergroup import GroupMember
from ..sim.network import CELLULAR, ETHERNET, LAN, LatencyModel
from ..sim.runtime import Simulation
from .topology import Site, Topology
from .workload import Op, canonical_digest, expected_state, generate_ops

#: Core-cloud mesh latency (paper section 7.2 geo-distribution stand-in).
DC_MESH = LatencyModel(5.0, 1.0)

#: Warm-up phases, matching the chaos harness's build sequence.
CONNECT_SETTLE_MS = 300.0
GROUP_SETTLE_MS = 500.0


def build_site(transport: Any, topo: Topology, site: Site) -> Any:
    """Construct one site's protocol actor over ``transport``.

    Returns the site's principal actor (the DC, PoP, edge node or group
    member).  Interest declaration and group bootstrap happen here;
    ``connect()`` is the caller's job for non-group sites so the sim
    path can interleave settling phases.
    """
    if site.role == "dc":
        peer_ids = [s.name for s in topo.dcs if s.name != site.name]
        return DataCenter(site.name, transport, None, peer_dcs=peer_ids,
                          n_shards=site.n_shards,
                          k_target=site.k_target)
    if site.role == "pop":
        return PoPNode(site.name, transport, None, dc_id=site.dc)
    if site.role == "edge":
        node = EdgeNode(site.name, transport, None, dc_id=site.dc)
        for key, type_name in topo.keys:
            node.declare_interest(key, type_name)
        return node
    if site.role == "member":
        member = GroupMember(site.name, transport, None, dc_id=site.dc,
                             group_id=site.group,
                             parent_id=site.parent,
                             commit_variant=site.commit_variant)
        for key, type_name in topo.keys:
            member.declare_interest(key, type_name)
        return member
    raise ValueError(f"unknown role {site.role!r}")


def bootstrap_group(topo: Topology, member: GroupMember) -> None:
    """Config-driven group formation for one member.

    Every member installs the same roster; the parent additionally
    absorbs each member's interest (all members declare the topology's
    full key list) and opens the group's DC session.
    """
    roster = tuple(sorted(
        s.name for s in topo.members_of(member.group_id)))
    member.init_group(roster)
    if member.is_parent:
        interest = tuple((key.to_dict(), type_name)
                         for key, type_name in topo.keys)
        for name in roster:
            member._absorb_interest(name, interest)
        member.connect()


# ---------------------------------------------------------------------------
# DES reference world
# ---------------------------------------------------------------------------

class SimWorld:
    """Every topology site inside one simulation."""

    def __init__(self, topo: Topology, sim: Simulation,
                 actors: Dict[str, Any]):
        self.topo = topo
        self.sim = sim
        self.actors = actors
        self.committed = 0
        self.aborted = 0

    @property
    def dcs(self) -> List[DataCenter]:
        return [self.actors[s.name] for s in self.topo.dcs]


def build_sim_world(topo: Topology) -> SimWorld:
    """Build the whole topology into a warmed-up simulation."""
    sim = Simulation(seed=topo.seed, default_latency=CELLULAR)
    transport = sim.network.transport_view(sim.loop)
    actors: Dict[str, Any] = {}

    dc_sites = topo.dcs
    for site in dc_sites:
        dc = build_site(transport, topo, site)
        actors[site.name] = dc
        for shard in dc.shard_ids:
            sim.network.set_link(site.name, shard, LAN)
    for a in dc_sites:
        for b in dc_sites:
            if a.name < b.name:
                sim.network.set_link(a.name, b.name, DC_MESH)

    members: List[GroupMember] = []
    for site in topo.sites:
        if site.role == "dc":
            continue
        actor = build_site(transport, topo, site)
        actors[site.name] = actor
        if site.role == "member":
            members.append(actor)
            for peer in topo.members_of(site.group):
                if peer.name < site.name:
                    sim.network.set_link(peer.name, site.name, LAN)
            if site.name == site.parent:
                sim.network.set_link(site.name, site.dc, ETHERNET)
        elif site.role == "pop":
            sim.network.set_link(site.name, site.dc, ETHERNET)
        else:
            sim.network.set_link(site.name, site.dc, CELLULAR)

    # Settle sequence mirrors the chaos harness: plain edges connect,
    # sessions open, then groups form on the live mesh.
    for site in topo.sites:
        if site.role in ("edge", "pop"):
            actors[site.name].connect()
    sim.run_for(CONNECT_SETTLE_MS)
    for member in members:
        bootstrap_group(topo, member)
    sim.run_for(GROUP_SETTLE_MS)
    return SimWorld(topo, sim, actors)


def _schedule_ops(world: SimWorld, ops: List[Op]) -> None:
    start = world.sim.now
    for op in ops:
        client = world.actors[op.client]

        def body(tx, op=op):
            yield tx.update(op.key, op.type_name, op.method, *op.args)

        def fire(client=client, body=body) -> None:
            def done(result, stats):
                world.committed += 1

            def abort(exc):
                world.aborted += 1

            client.run_transaction(body, on_done=done, on_abort=abort)

        world.sim.loop.schedule_at(start + op.at_ms, fire)


def run_reference(topo: Topology,
                  ops: Optional[List[Op]] = None) -> Dict[str, Any]:
    """Run the topology's workload under the DES to convergence.

    Returns the canonical digest every DC agreed on, plus whether the
    run converged to the analytic expectation of the op list.
    """
    if ops is None:
        ops = generate_ops(topo.seed,
                           [s.name for s in topo.clients],
                           topo.keys, topo.n_txns, topo.window_ms)
    world = build_sim_world(topo)
    _schedule_ops(world, ops)
    world.sim.run_for(topo.window_ms)

    expect_digest = canonical_digest(expected_state(topo.keys, ops))
    converged = False
    waited = 0.0
    step = 500.0
    while waited <= topo.settle_max_ms:
        digests = {canonical_digest(dc.state_digest())
                   for dc in world.dcs}
        if len(digests) == 1 and digests == {expect_digest}:
            converged = True
            break
        world.sim.run_for(step)
        waited += step
    digests = sorted(canonical_digest(dc.state_digest())
                     for dc in world.dcs)
    return {
        "digest": digests[0] if len(set(digests)) == 1 else None,
        "dc_digests": digests,
        "expected_digest": expect_digest,
        "converged": converged,
        "committed": world.committed,
        "aborted": world.aborted,
        "ops": len(ops),
        "settle_ms": waited,
    }
