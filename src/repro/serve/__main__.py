"""CLI: ``python -m repro.serve --topology examples/serve_3dc.toml``.

Without ``--node``, runs the supervisor: spawns one child process per
site, drives the seeded workload live *and* under the DES, checks
digest parity, and exits 0 iff the deployment converged, matched, and
shut down cleanly.  With ``--node NAME``, runs that single site (the
form the supervisor spawns).
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from .node import run_node
from .supervisor import run_deployment, write_report
from .topology import load_topology


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Run a Colony deployment over asyncio TCP")
    parser.add_argument("--topology", required=True,
                        help="TOML topology file")
    parser.add_argument("--node", default=None,
                        help="run this single site (supervisor mode "
                             "when omitted)")
    parser.add_argument("--report", default=None,
                        help="write the parity report JSON here")
    parser.add_argument("--log-dir", default=None,
                        help="per-site JSON-lines logs go here")
    args = parser.parse_args(argv)

    topo = load_topology(args.topology)

    if args.node is not None:
        if args.node not in topo.by_name:
            parser.error(f"unknown site {args.node!r}")
        summary = asyncio.run(run_node(topo, args.node))
        return 0 if summary["clean"] else 1

    report = run_deployment(topo, log_dir=args.log_dir)
    if args.report:
        write_report(report, args.report)
    status = "OK" if report["ok"] else "FAILED"
    print(f"[serve] {status}: parity={report['digest_parity']} "
          f"clean_shutdown={report['clean_shutdown']} "
          f"ops={report['ops']}")
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
