"""Seeded deployment workload and canonical state digests.

The workload is a pure function of the topology: ``seed`` fixes every
operation (which client, which key, which CRDT update, when).  All
operations are *local* client transactions — locally committed CRDT
updates are exactly once by dot dedup, so any run that commits every
operation and converges holds the same final state, whether the clock
was simulated or real.  That makes the digest comparison content-based
and timing-independent: the DES reference, the live deployment, and the
analytic expectation (folding the op list) must all agree.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from ..core.txn import ObjectKey


@dataclass(frozen=True)
class Op:
    """One client transaction of the deployment workload."""

    at_ms: float           # offset from the site's workload start
    client: str            # site (and protocol node) name
    key: ObjectKey
    type_name: str
    method: str            # "increment" | "add"
    args: Tuple


def generate_ops(seed: int, clients: Sequence[str],
                 keys: Sequence[Tuple[ObjectKey, str]],
                 n_txns: int, window_ms: float) -> List[Op]:
    """The deployment's op list; deterministic for (seed, topology)."""
    rng = random.Random(f"serve-workload/{seed}")
    span = max(window_ms - 200.0, 100.0)
    ops = []
    for i in range(n_txns):
        at = rng.uniform(50.0, span)
        client = rng.choice(list(clients))
        key, type_name = rng.choice(list(keys))
        if type_name == "counter":
            method, args = "increment", (rng.randint(1, 5),)
        else:
            method, args = "add", (f"{client}:{i}",)
        ops.append(Op(at, client, key, type_name, method, args))
    return ops


def expected_state(keys: Sequence[Tuple[ObjectKey, str]],
                   ops: Sequence[Op]) -> Dict[ObjectKey, Any]:
    """Fold the op list into the final CRDT state it must produce."""
    state: Dict[ObjectKey, Any] = {
        key: (0 if type_name == "counter" else set())
        for key, type_name in keys}
    for op in ops:
        if op.method == "increment":
            state[op.key] += op.args[0]
        else:
            state[op.key].add(op.args[0])
    return state


def _canonical_value(value: Any) -> Any:
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    if isinstance(value, (list, tuple)):
        return sorted(value)
    return value


def canonical_digest(digest: Dict[ObjectKey, Any]) -> str:
    """Content-addressed hex digest of a ``state_digest()`` mapping.

    Keys sort lexically and set-valued CRDT states sort internally, so
    the digest is independent of dict order, hash seed, and backend.
    Empty-valued keys (counter 0 / empty set) are dropped: a replica
    that never saw a key and one that saw only no-ops agree.
    """
    canon = {}
    for key, value in digest.items():
        value = _canonical_value(value)
        if value == 0 or value == []:
            continue
        canon[f"{key.bucket}/{key.key}"] = value
    raw = json.dumps(canon, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(raw.encode("utf-8")).hexdigest()
